// Package packetrelease verifies the simulator's packet-ownership
// protocol at compile time: every *packet.Packet obtained from the pool
// (New, NewControl, Clone, Encapsulate, ...) must reach packet.Release or
// an ownership-transferring sink (Send, DeliverDirect, Drop, a Receive
// handler, the switch buffer) on every control-flow path, exactly once.
//
// The analysis is intraprocedural over a per-function CFG with a small
// set-of-path-states domain per packet variable: Owned, Freed (returned
// to the pool), Sent (ownership transferred), Escaped (aliased or stored;
// tracking waived). Branch refinement understands `v == nil`,
// `err != nil` after a producing or conditionally-consuming call, and
// `if buf.Buffer(pkt)`. Functions using goto are skipped. A function
// whose packet flow is provably balanced but flag-correlated beyond the
// domain (see pageFlood) can opt out of the leak check — never the
// double-release check — with `//mmlint:packetflow-ok <reason>` in its
// doc comment.
package packetrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/mmlint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "packetrelease",
	Doc:  "check that every pooled packet reaches Release or an ownership sink on every path",
	Run:  run,
}

// Ownership states. A variable's state is the set of states it can be in
// across the paths reaching a program point, encoded as a bitset; the
// merge is bitwise OR and definite-misuse reports require a singleton.
const (
	bitOwned   uint8 = 1 << iota // holds a live packet this function must consume
	bitFreed                     // returned to the pool
	bitSent                      // ownership transferred elsewhere
	bitEscaped                   // aliased/stored/captured; tracking waived
)

type state map[*types.Var]uint8

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	// The pool implementation manages raw ownership by construction, and
	// code outside internal/ (tests, tools) is out of contract scope.
	if path == packetPkg || !analysis.IsInternalSimPath(path) {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			_, waived := analysis.DocDirective(decl.Doc, "packetflow-ok")
			analyzeFunc(pass, decl.Body, obligations(pass, decl), waived)
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyzeFunc(pass, lit.Body, nil, waived)
				}
				return true
			})
		}
	}
	return nil
}

// obligations returns the parameters this declaration must consume, per
// the checked entries of the sinks table.
func obligations(pass *analysis.Pass, decl *ast.FuncDecl) map[*types.Var]token.Pos {
	sf, ok := sinks[analysis.DeclRef(pass.Info, decl)]
	if !ok || !sf.checked {
		return nil
	}
	idx := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if idx == sf.arg {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok {
					return map[*types.Var]token.Pos{v: name.Pos()}
				}
				return nil
			}
			idx++
		}
	}
	return nil
}

type deferredRelease struct {
	v   *types.Var
	pos token.Pos
}

type fnAnalysis struct {
	pass *analysis.Pass
	info *types.Info

	// Error/bool variable associations for branch refinement, collected
	// in a prepass over the body (nested function literals excluded —
	// they are analyzed separately).
	errProduced map[*types.Var]*types.Var // err -> packet that is nil when err != nil
	errRestore  map[*types.Var]*types.Var // err -> packet the caller keeps when err != nil

	origin    map[*types.Var]token.Pos // producer call site, for leak reports
	obligated map[*types.Var]token.Pos
	// capturedEscape holds variables captured by a function literal; a
	// later producer binding to one is immediately waived.
	capturedEscape map[*types.Var]bool
	deferred       []deferredRelease

	leakWaived bool
	reporting  bool
	reported   map[string]bool
}

func analyzeFunc(pass *analysis.Pass, body *ast.BlockStmt, obligated map[*types.Var]token.Pos, leakWaived bool) {
	fa := &fnAnalysis{
		pass:           pass,
		info:           pass.Info,
		errProduced:    make(map[*types.Var]*types.Var),
		errRestore:     make(map[*types.Var]*types.Var),
		origin:         make(map[*types.Var]token.Pos),
		obligated:      obligated,
		capturedEscape: make(map[*types.Var]bool),
		leakWaived:     leakWaived,
		reported:       make(map[string]bool),
	}
	fa.prepass(body)
	cfg, ok := buildCFG(pass.Info, body, fa.refine)
	if !ok {
		return // unsupported control flow (goto): skip the function
	}

	// Fixpoint over the CFG, then a silent-to-reporting second pass.
	in := map[*block]state{cfg.entry: {}}
	for v, pos := range obligated {
		in[cfg.entry][v] = bitOwned
		fa.origin[v] = pos
	}
	work := []*block{cfg.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := cloneState(in[b])
		for _, e := range b.elems {
			fa.exec(st, e)
		}
		for _, succ := range b.succs {
			if mergeInto(in, succ, st) {
				work = append(work, succ)
			}
		}
	}

	fa.reporting = true
	for b, st0 := range in {
		if b == cfg.exit || b == cfg.dead {
			continue
		}
		st := cloneState(st0)
		for _, e := range b.elems {
			fa.exec(st, e)
		}
	}
	exitState, reached := in[cfg.exit]
	if !reached {
		return
	}
	final := cloneState(exitState)
	for _, d := range fa.deferred {
		fa.consume(final, d.v, sinks[analysis.FuncRef{Pkg: packetPkg, Name: "Release"}], d.pos)
	}
	if fa.leakWaived {
		return
	}
	for v, bits := range final {
		if bits&bitOwned == 0 {
			continue
		}
		if pos, ok := fa.obligated[v]; ok {
			fa.reportf(pos, "parameter %s must reach Release or an ownership sink on every path (ownership facts: this function consumes it)", v.Name())
		} else {
			fa.reportf(fa.origin[v], "packet %s is not released or handed to an ownership sink on every path", v.Name())
		}
	}
}

func cloneState(st state) state {
	out := make(state, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func mergeInto(in map[*block]state, b *block, st state) bool {
	cur, ok := in[b]
	if !ok {
		in[b] = cloneState(st)
		return true
	}
	changed := false
	for k, bits := range st {
		if cur[k]|bits != cur[k] {
			cur[k] |= bits
			changed = true
		}
	}
	return changed
}

// reportf reports once per (position, message), only during the report
// phase (states are not final during fixpoint iteration).
func (fa *fnAnalysis) reportf(pos token.Pos, format string, args ...any) {
	if !fa.reporting {
		return
	}
	d := fa.pass.Fset.Position(pos).String() + format
	if fa.reported[d] {
		return
	}
	fa.reported[d] = true
	fa.pass.Reportf(pos, format, args...)
}

// prepass records err-variable associations from assignments of the form
// `v, err := producer(...)` and `err := conditionalSink(..., pkt, ...)`,
// skipping nested function literals.
func (fa *fnAnalysis) prepass(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		ref := analysis.Callee(fa.info, call)
		if pf, ok := producers[ref]; ok && len(a.Lhs) == 2 {
			pktVar := fa.lhsVar(a.Lhs[0])
			errVar := fa.lhsVar(a.Lhs[1])
			if errVar != nil {
				if pktVar != nil {
					fa.errProduced[errVar] = pktVar
				}
				if pf.condRestore && pf.consumesArg >= 0 && pf.consumesArg < len(call.Args) {
					if av := fa.identVar(call.Args[pf.consumesArg]); av != nil {
						fa.errRestore[errVar] = av
					}
				}
			}
		}
		if sf, ok := sinks[ref]; ok && sf.condErr && len(a.Lhs) == 1 && sf.arg < len(call.Args) {
			errVar := fa.lhsVar(a.Lhs[0])
			av := fa.identVar(call.Args[sf.arg])
			if errVar != nil && av != nil {
				fa.errRestore[errVar] = av
			}
		}
		return true
	})
}

// lhsVar resolves an assignment target identifier to its variable.
func (fa *fnAnalysis) lhsVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := fa.info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := fa.info.Uses[id].(*types.Var)
	return v
}

// identVar resolves a used identifier to its variable.
func (fa *fnAnalysis) identVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := fa.info.Uses[id].(*types.Var)
	return v
}

func isPacketVar(v *types.Var) bool {
	return v != nil && analysis.IsNamedType(v.Type(), packetPkg, "Packet")
}

// refine produces branch-edge assumptions for an if-condition.
func (fa *fnAnalysis) refine(cond ast.Expr) (thenElems, elseElems []elem) {
	cond = ast.Unparen(cond)
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		t, e := fa.refine(u.X)
		return e, t
	}
	if call, ok := cond.(*ast.CallExpr); ok {
		// `if buf.Buffer(pkt) { ... }`: consumed on the true edge only.
		sf, ok := sinks[analysis.Callee(fa.info, call)]
		if ok && sf.condBool && sf.arg < len(call.Args) {
			if v := fa.identVar(call.Args[sf.arg]); v != nil {
				return nil, []elem{&assumeElem{obj: v, kind: assumeRestore}}
			}
		}
		return nil, nil
	}
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, nil
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(fa.info, x) {
		x, y = y, x
	}
	if !isNilIdent(fa.info, y) {
		return nil, nil
	}
	v := fa.identVar(x)
	if v == nil {
		return nil, nil
	}
	if isPacketVar(v) {
		// The nil edge proves the variable holds nothing.
		empty := []elem{&assumeElem{obj: v, kind: assumeEmpty}}
		if be.Op == token.EQL {
			return empty, nil
		}
		return nil, empty
	}
	// Error-variable refinement: the err != nil edge proves the produced
	// packet is nil and/or that a conditional sink did not consume.
	var onErr []elem
	if p := fa.errProduced[v]; p != nil {
		onErr = append(onErr, &assumeElem{obj: p, kind: assumeEmpty})
	}
	if r := fa.errRestore[v]; r != nil {
		onErr = append(onErr, &assumeElem{obj: r, kind: assumeRestore})
	}
	if onErr == nil {
		return nil, nil
	}
	if be.Op == token.NEQ { // err != nil
		return onErr, nil
	}
	return nil, onErr // err == nil: error edge is the else branch
}

// exec interprets one CFG element against the state.
func (fa *fnAnalysis) exec(st state, e elem) {
	switch n := e.(type) {
	case *assumeElem:
		bits, ok := st[n.obj]
		if !ok {
			return
		}
		switch n.kind {
		case assumeEmpty:
			bits &^= bitOwned
		case assumeRestore:
			if bits&bitSent != 0 {
				bits = bits&^bitSent | bitOwned
			}
		}
		if bits == 0 {
			delete(st, n.obj)
		} else {
			st[n.obj] = bits
		}
	case ast.Stmt:
		fa.stmt(st, n)
	case ast.Expr:
		fa.eval(st, n, false)
	}
}

func (fa *fnAnalysis) stmt(st state, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			fa.call(st, call, true)
			return
		}
		fa.eval(st, s.X, false)
	case *ast.AssignStmt:
		fa.assign(st, s)
	case *ast.IncDecStmt:
		fa.eval(st, s.X, false)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Values) == 1 && len(vs.Names) >= 1 {
				if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
					if _, isProd := producers[analysis.Callee(fa.info, call)]; isProd {
						fa.call(st, call, false)
						fa.bind(st, vs.Names[0], call)
						continue
					}
				}
			}
			for _, val := range vs.Values {
				fa.eval(st, val, true)
			}
		}
	case *ast.SendStmt:
		fa.eval(st, s.Chan, false)
		fa.eval(st, s.Value, true)
	case *ast.GoStmt:
		// Deferred execution: even known sinks cannot be trusted at the
		// spawn point, so every packet argument escapes.
		fa.escapeCallArgs(st, s.Call)
	case *ast.DeferStmt:
		fa.deferStmt(st, s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fa.eval(st, r, true)
		}
	}
}

func (fa *fnAnalysis) deferStmt(st state, s *ast.DeferStmt) {
	ref := analysis.Callee(fa.info, s.Call)
	if sf, ok := sinks[ref]; ok && sf.frees && !sf.condErr && !sf.condBool && sf.arg < len(s.Call.Args) {
		if v := fa.identVar(s.Call.Args[sf.arg]); v != nil && isPacketVar(v) {
			for _, d := range fa.deferred {
				if d.v == v {
					return
				}
			}
			fa.deferred = append(fa.deferred, deferredRelease{v: v, pos: s.Pos()})
			for i, arg := range s.Call.Args {
				if i != sf.arg {
					fa.eval(st, arg, false)
				}
			}
			return
		}
	}
	if isBorrow(ref) {
		for _, arg := range s.Call.Args {
			fa.eval(st, arg, false)
		}
		return
	}
	fa.escapeCallArgs(st, s.Call)
}

func (fa *fnAnalysis) escapeCallArgs(st state, call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		fa.eval(st, sel.X, false)
	}
	for _, arg := range call.Args {
		fa.eval(st, arg, true)
	}
}

func (fa *fnAnalysis) assign(st state, a *ast.AssignStmt) {
	if len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			if _, isProd := producers[analysis.Callee(fa.info, call)]; isProd {
				fa.call(st, call, false)
				if id, ok := ast.Unparen(a.Lhs[0]).(*ast.Ident); ok {
					fa.bind(st, id, call)
				} else {
					// Producer result stored straight into a field or
					// element: ownership moves somewhere untracked.
					fa.eval(st, a.Lhs[0], false)
				}
				return
			}
		}
	}
	for _, rhs := range a.Rhs {
		fa.eval(st, rhs, true)
	}
	for _, lhs := range a.Lhs {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			// Overwriting a tracked variable unbinds it.
			if v := fa.lhsVar(lhs); v != nil && a.Tok == token.ASSIGN {
				delete(st, v)
			}
		case *ast.SelectorExpr:
			fa.eval(st, l.X, false)
		case *ast.IndexExpr:
			fa.eval(st, l.X, false)
			fa.eval(st, l.Index, false)
		case *ast.StarExpr:
			fa.eval(st, l.X, false)
		}
	}
}

// bind makes id a tracked owned packet produced at call.
func (fa *fnAnalysis) bind(st state, id *ast.Ident, call *ast.CallExpr) {
	if id.Name == "_" {
		fa.reportf(call.Pos(), "owned packet from %s is discarded without Release", callName(call))
		return
	}
	v := fa.lhsVar(id)
	if v == nil || !isPacketVar(v) {
		return
	}
	if fa.capturedEscape[v] {
		st[v] = bitEscaped
		return
	}
	st[v] = bitOwned
	fa.origin[v] = call.Pos()
}

// eval interprets an expression: checks reads of freed packets and, when
// escape is set, records that the value of a tracked identifier flows
// somewhere the analysis cannot follow.
func (fa *fnAnalysis) eval(st state, e ast.Expr, escape bool) {
	switch e := e.(type) {
	case *ast.Ident:
		v, _ := fa.info.Uses[e].(*types.Var)
		if v == nil {
			return
		}
		bits, tracked := st[v]
		if tracked && bits == bitFreed {
			fa.reportf(e.Pos(), "use of packet %s after Release", v.Name())
		}
		if escape && tracked {
			st[v] = bits&^bitOwned | bitEscaped
		}
	case *ast.ParenExpr:
		fa.eval(st, e.X, escape)
	case *ast.SelectorExpr:
		// Reading a field or method value: the base does not escape
		// (payload and inner sharing are part of the packet contract).
		fa.eval(st, e.X, false)
	case *ast.CallExpr:
		fa.call(st, e, false)
	case *ast.UnaryExpr:
		fa.eval(st, e.X, e.Op == token.AND)
	case *ast.BinaryExpr:
		fa.eval(st, e.X, false)
		fa.eval(st, e.Y, false)
	case *ast.StarExpr:
		fa.eval(st, e.X, false)
	case *ast.IndexExpr:
		fa.eval(st, e.X, false)
		fa.eval(st, e.Index, false)
	case *ast.IndexListExpr:
		fa.eval(st, e.X, false)
		for _, idx := range e.Indices {
			fa.eval(st, idx, false)
		}
	case *ast.SliceExpr:
		fa.eval(st, e.X, false)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				fa.eval(st, b, false)
			}
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				fa.eval(st, kv.Value, true)
				continue
			}
			fa.eval(st, elt, true)
		}
	case *ast.TypeAssertExpr:
		fa.eval(st, e.X, escape)
	case *ast.FuncLit:
		// The literal's body is analyzed separately; here, capturing a
		// tracked packet waives its tracking.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := fa.info.Uses[id].(*types.Var)
			if v == nil || !isPacketVar(v) {
				return true
			}
			fa.capturedEscape[v] = true
			if bits, tracked := st[v]; tracked {
				st[v] = bits&^bitOwned | bitEscaped
			}
			return true
		})
	}
}

// call interprets a call expression. discarded is set for expression
// statements, where an owned producer result would be dropped on the
// floor.
func (fa *fnAnalysis) call(st state, call *ast.CallExpr, discarded bool) {
	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fa.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				fa.eval(st, call.Args[0], false)
				for _, arg := range call.Args[1:] {
					fa.eval(st, arg, true)
				}
			case "panic":
				fa.eval(st, call.Args[0], true)
			default:
				for _, arg := range call.Args {
					fa.eval(st, arg, false)
				}
			}
			return
		}
	}
	if tv, ok := fa.info.Types[call.Fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			fa.eval(st, arg, false)
		}
		return
	}

	ref := analysis.Callee(fa.info, call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		fa.eval(st, sel.X, false)
	} else if ref == (analysis.FuncRef{}) {
		fa.eval(st, call.Fun, false)
	}

	if pf, isProd := producers[ref]; isProd {
		for i, arg := range call.Args {
			if i == pf.consumesArg {
				if v := fa.identVar(arg); v != nil && isPacketVar(v) {
					fa.consume(st, v, sinkFact{frees: false}, arg.Pos())
					continue
				}
				if sub, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					fa.call(st, sub, false)
					continue
				}
			}
			fa.eval(st, arg, false)
		}
		if discarded {
			fa.reportf(call.Pos(), "owned packet from %s is discarded without Release", callName(call))
		}
		return
	}

	if sf, isSink := sinks[ref]; isSink {
		for i, arg := range call.Args {
			if i == sf.arg {
				if v := fa.identVar(arg); v != nil && isPacketVar(v) {
					fa.consume(st, v, sf, arg.Pos())
					continue
				}
				if sub, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					// A producer result passed straight to a sink is
					// consumed at birth.
					fa.call(st, sub, false)
					continue
				}
			}
			fa.eval(st, arg, false)
		}
		return
	}

	if isBorrow(ref) {
		for _, arg := range call.Args {
			fa.eval(st, arg, false)
		}
		return
	}

	// Unknown callee: packet arguments escape.
	for _, arg := range call.Args {
		fa.eval(st, arg, true)
	}
}

// consume moves a variable through a sink: the Owned fraction of its
// path-state becomes Freed or Sent, and definite misuse (a path set that
// is ONLY freed or only sent) is reported.
func (fa *fnAnalysis) consume(st state, v *types.Var, sf sinkFact, pos token.Pos) {
	bits, tracked := st[v]
	if !tracked {
		return // not a packet this function owns (borrowed param, etc.)
	}
	switch bits {
	case bitFreed:
		if sf.frees {
			fa.reportf(pos, "double Release of packet %s", v.Name())
		} else {
			fa.reportf(pos, "packet %s is sent after Release", v.Name())
		}
	case bitSent:
		if sf.frees {
			fa.reportf(pos, "packet %s is released after its ownership was transferred", v.Name())
		} else {
			fa.reportf(pos, "packet %s is sent twice", v.Name())
		}
	}
	target := bitSent
	if sf.frees {
		target = bitFreed
	}
	nb := bits &^ bitOwned
	if bits&bitOwned != 0 || nb == 0 {
		nb |= target
	}
	st[v] = nb
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
