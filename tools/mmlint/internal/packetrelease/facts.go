package packetrelease

import "repro/tools/mmlint/internal/analysis"

// The checked-in ownership facts table. The packet pool hands out owned
// *packet.Packet values; ownership moves exactly once, through one of the
// sinks below, or back to the pool through Release. The analyzer trusts
// these contracts at call sites and (for checked sinks defined inside the
// analyzed packages) verifies the declarations honour them.
//
// Keys use the Callee naming scheme: package path, receiver type name
// ("" for package-level functions, the interface name for interface
// methods), function name.

const packetPkg = "repro/internal/packet"

// producerFact describes a function whose result 0 is an owned packet.
type producerFact struct {
	// consumesArg is the index of a packet argument the producer takes
	// ownership of (Encapsulate absorbs its inner packet), or -1.
	consumesArg int
	// condRestore: when the producer also returns an error, a non-nil
	// error means the consumed argument stays with the caller.
	condRestore bool
}

var producers = map[analysis.FuncRef]producerFact{
	{Pkg: packetPkg, Name: "New"}:                         {consumesArg: -1},
	{Pkg: packetPkg, Name: "NewFrom"}:                     {consumesArg: -1},
	{Pkg: packetPkg, Name: "NewControl"}:                  {consumesArg: -1},
	{Pkg: packetPkg, Name: "Unmarshal"}:                   {consumesArg: -1},
	{Pkg: packetPkg, Name: "Encapsulate"}:                 {consumesArg: 2, condRestore: true},
	{Pkg: packetPkg, Recv: "Packet", Name: "Clone"}:       {consumesArg: -1},
	{Pkg: packetPkg, Recv: "Packet", Name: "Decapsulate"}: {consumesArg: -1},
}

// sinkFact describes a function that takes ownership of the packet passed
// at argument index arg.
type sinkFact struct {
	arg int
	// frees: the packet returns to the pool (any later read is
	// use-after-release). Transfer sinks keep the packet alive elsewhere.
	frees bool
	// condErr: consumes only when the returned error is nil (Send).
	condErr bool
	// condBool: consumes only when the returned bool is true (Buffer).
	condBool bool
	// checked: the declaration lives in an analyzed package and must
	// itself consume the parameter on every path.
	checked bool
}

const (
	netsimPkg     = "repro/internal/netsim"
	qosPkg        = "repro/internal/qos"
	mobileipPkg   = "repro/internal/mobileip"
	cellularipPkg = "repro/internal/cellularip"
	multitierPkg  = "repro/internal/multitier"
)

var sinks = map[analysis.FuncRef]sinkFact{
	{Pkg: packetPkg, Name: "Release"}: {arg: 0, frees: true},

	// netsim: drops free the packet; sends and delivery keep it moving.
	{Pkg: netsimPkg, Recv: "Network", Name: "Drop"}:          {arg: 1, frees: true, checked: true},
	{Pkg: netsimPkg, Recv: "Network", Name: "observeDrop"}:   {arg: 1, frees: true, checked: true},
	{Pkg: netsimPkg, Recv: "Network", Name: "deliver"}:       {arg: 1, checked: true},
	{Pkg: netsimPkg, Recv: "Network", Name: "DeliverDirect"}: {arg: 2, checked: true},
	{Pkg: netsimPkg, Recv: "Node", Name: "Send"}:             {arg: 1, condErr: true},
	{Pkg: netsimPkg, Recv: "Node", Name: "SendVia"}:          {arg: 1, condErr: true},
	{Pkg: netsimPkg, Recv: "Handler", Name: "Receive"}:       {arg: 0},
	{Pkg: netsimPkg, Recv: "HandlerFunc", Name: "Receive"}:   {arg: 0},
	{Pkg: netsimPkg, Recv: "StaticRouter", Name: "Receive"}:  {arg: 0, checked: true},
	{Pkg: netsimPkg, Recv: "StaticRouter", Name: "Forward"}:  {arg: 0, checked: true},

	// qos: the switch buffer absorbs the packet only when it fits.
	{Pkg: qosPkg, Recv: "SwitchBuffer", Name: "Buffer"}: {arg: 0, condBool: true},

	// mobileip
	{Pkg: mobileipPkg, Recv: "HomeAgent", Name: "Receive"}:             {arg: 0, checked: true},
	{Pkg: mobileipPkg, Recv: "HomeAgent", Name: "handleControl"}:       {arg: 0, checked: true},
	{Pkg: mobileipPkg, Recv: "HomeAgent", Name: "intercept"}:           {arg: 0, checked: true},
	{Pkg: mobileipPkg, Recv: "ForeignAgent", Name: "Receive"}:          {arg: 0, checked: true},
	{Pkg: mobileipPkg, Recv: "ForeignAgent", Name: "relayReply"}:       {arg: 0, checked: true},
	{Pkg: mobileipPkg, Recv: "ForeignAgent", Name: "deliverTunnelled"}: {arg: 0, checked: true},
	{Pkg: mobileipPkg, Recv: "MobileNode", Name: "Receive"}:            {arg: 0, checked: true},
	{Pkg: mobileipPkg, Recv: "MobileNode", Name: "SendData"}:           {arg: 0, checked: true},

	// cellularip
	{Pkg: cellularipPkg, Recv: "BaseStation", Name: "Receive"}:       {arg: 0, checked: true},
	{Pkg: cellularipPkg, Recv: "BaseStation", Name: "receiveAir"}:    {arg: 0, checked: true},
	{Pkg: cellularipPkg, Recv: "BaseStation", Name: "receiveUp"}:     {arg: 0, checked: true},
	{Pkg: cellularipPkg, Recv: "BaseStation", Name: "handleControl"}: {arg: 0, checked: true},
	{Pkg: cellularipPkg, Recv: "BaseStation", Name: "forwardUp"}:     {arg: 0, checked: true},
	{Pkg: cellularipPkg, Recv: "BaseStation", Name: "deliverDown"}:   {arg: 0, checked: true},
	{Pkg: cellularipPkg, Recv: "BaseStation", Name: "sendMapping"}:   {arg: 0, checked: true},
	{Pkg: cellularipPkg, Recv: "BaseStation", Name: "pageFlood"}:     {arg: 0, checked: true},
	{Pkg: cellularipPkg, Recv: "MobileHost", Name: "Receive"}:        {arg: 0, checked: true},
	{Pkg: cellularipPkg, Recv: "MobileHost", Name: "SendData"}:       {arg: 0, checked: true},

	// multitier
	{Pkg: multitierPkg, Recv: "Station", Name: "Receive"}:         {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "receiveAir"}:      {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "receiveDown"}:     {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "receiveUp"}:       {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "receiveExternal"}: {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "consumeControl"}:  {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "redirect"}:        {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "forwardUp"}:       {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "sendUpData"}:      {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "deliverDown"}:     {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "deliverAir"}:      {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "bufferPacket"}:    {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "dropStale"}:       {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "dropFault"}:       {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "dropPreempted"}:   {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Station", Name: "pageFlood"}:       {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Mobile", Name: "Receive"}:          {arg: 0, checked: true},
	{Pkg: multitierPkg, Recv: "Mobile", Name: "SendData"}:         {arg: 0, checked: true},
}

// borrows are functions that read a packet argument without taking
// ownership: observers, the control-path helpers that wrap a packet's
// payload into a fresh packet, and every packet method that is not a
// producer. A call to a borrow leaves the caller's state untouched.
var borrows = map[analysis.FuncRef]bool{
	{Pkg: netsimPkg, Recv: "Observer", Name: "OnSend"}:        true,
	{Pkg: netsimPkg, Recv: "Observer", Name: "OnDeliver"}:     true,
	{Pkg: netsimPkg, Recv: "Observer", Name: "OnDrop"}:        true,
	{Pkg: netsimPkg, Recv: "Network", Name: "observeSend"}:    true,
	{Pkg: netsimPkg, Recv: "Network", Name: "observeDeliver"}: true,

	// multitier control handling: consumeControl owns the packet via its
	// deferred Release; everything it dispatches to only reads it.
	{Pkg: multitierPkg, Recv: "Station", Name: "handleControl"}:     true,
	{Pkg: multitierPkg, Recv: "Station", Name: "handleLocation"}:    true,
	{Pkg: multitierPkg, Recv: "Station", Name: "handleUpdate"}:      true,
	{Pkg: multitierPkg, Recv: "Station", Name: "handleDelete"}:      true,
	{Pkg: multitierPkg, Recv: "Station", Name: "propagateUp"}:       true,
	{Pkg: multitierPkg, Recv: "Station", Name: "sendControlTo"}:     true,
	{Pkg: multitierPkg, Recv: "Station", Name: "handleAnchorReply"}: true,
}

// isBorrow reports whether a call to ref leaves packet arguments with the
// caller. Any packet-package function or method that is neither a
// producer nor a sink (Size, Marshal, DecrementTTL, ...) only reads.
func isBorrow(ref analysis.FuncRef) bool {
	if borrows[ref] {
		return true
	}
	if ref.Pkg == packetPkg {
		_, producer := producers[ref]
		_, sink := sinks[ref]
		return !producer && !sink
	}
	return false
}
