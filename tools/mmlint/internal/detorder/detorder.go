// Package detorder enforces the simulator's determinism discipline
// inside repro/internal/...: identical inputs must produce byte-identical
// output, so iteration order, time sources and concurrency are all
// policed.
//
// Three rule groups:
//
//  1. Map-range order: a `for ... range m` over a map must not, inside
//     its body, (a) call an order-sensitive effect (rng draws, scheduler
//     arming, packet sends, printing), (b) write non-local state in an
//     order-dependent way (writes indexed by the range key, integer
//     counter bumps, constant-flag stores and delete(m, key) are
//     order-independent and allowed), or (c) append to a slice that is
//     never sorted afterwards in the same function. Sorting the keys
//     first and ranging the sorted slice — or an explicit
//     `//mmlint:ordered` comment on the range line or the line above —
//     sanctions the loop.
//  2. Ambient nondeterminism: time.Now/Since/Until and the global
//     math/rand draw functions are banned; simulated time comes from
//     simtime.Scheduler and randomness from seeded simtime.Rand. The
//     one exception is core/measure.go, where obs wall-time
//     diagnostics may read the host clock (never feeding sim state).
//  3. Concurrency: bare `go` statements are banned. The measurement
//     fan-out in internal/core/measure.go and everything under
//     internal/runner are the sanctioned exceptions.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/tools/mmlint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "flag nondeterministic map iteration, wall-clock time, global rand and bare goroutines in simulator code",
	Run:  run,
}

const (
	simtimePkg = "repro/internal/simtime"
	netsimPkg  = "repro/internal/netsim"
	obsPkg     = "repro/internal/obs"
)

// effects are calls whose order between iterations is observable in
// simulator output: rng draws, event-queue arming (sequence numbers),
// packet movement, and printing. Ticker.Stop and Event.Cancel are
// deliberately absent: pop order is totally ordered by (time, seq), so
// cancellation order cannot be observed.
var effects = map[analysis.FuncRef]bool{
	{Pkg: simtimePkg, Recv: "Scheduler", Name: "At"}:        true,
	{Pkg: simtimePkg, Recv: "Scheduler", Name: "After"}:     true,
	{Pkg: simtimePkg, Recv: "Scheduler", Name: "AfterFIFO"}: true,
	{Pkg: simtimePkg, Recv: "Scheduler", Name: "Every"}:     true,
	{Pkg: simtimePkg, Recv: "Ticker", Name: "Reset"}:        true,

	{Pkg: netsimPkg, Recv: "Node", Name: "Send"}:             true,
	{Pkg: netsimPkg, Recv: "Node", Name: "SendVia"}:          true,
	{Pkg: netsimPkg, Recv: "Network", Name: "DeliverDirect"}: true,
	{Pkg: netsimPkg, Recv: "Network", Name: "Drop"}:          true,
	{Pkg: netsimPkg, Recv: "Network", Name: "deliver"}:       true,
	{Pkg: netsimPkg, Recv: "Network", Name: "NewNode"}:       true,
	{Pkg: netsimPkg, Recv: "Network", Name: "Connect"}:       true,
	{Pkg: netsimPkg, Recv: "Handler", Name: "Receive"}:       true,
	{Pkg: netsimPkg, Recv: "HandlerFunc", Name: "Receive"}:   true,
	{Pkg: netsimPkg, Recv: "StaticRouter", Name: "Forward"}:  true,
	{Pkg: netsimPkg, Recv: "StaticRouter", Name: "Receive"}:  true,
	{Pkg: netsimPkg, Recv: "StaticRouter", Name: "AddRoute"}: true,

	// Trace.Emit appends to the shared event buffer (export order is
	// emission order) and Monitor.Eval both reads sampled series and
	// emits alert events plus policy callbacks, so calling either from
	// a map range bakes map order into the trace bytes.
	{Pkg: obsPkg, Recv: "Trace", Name: "Emit"}:   true,
	{Pkg: obsPkg, Recv: "Monitor", Name: "Eval"}: true,

	{Pkg: "fmt", Name: "Print"}:    true,
	{Pkg: "fmt", Name: "Printf"}:   true,
	{Pkg: "fmt", Name: "Println"}:  true,
	{Pkg: "fmt", Name: "Fprint"}:   true,
	{Pkg: "fmt", Name: "Fprintf"}:  true,
	{Pkg: "fmt", Name: "Fprintln"}: true,
}

// isEffect also treats every *simtime.Rand method as an effect: each
// draw advances the stream, so draw order is output order.
func isEffect(ref analysis.FuncRef) bool {
	if effects[ref] {
		return true
	}
	return ref.Pkg == simtimePkg && ref.Recv == "Rand" && ref.Name != ""
}

// bannedTime and bannedRand are ambient-nondeterminism sources.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

var bannedRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"NormFloat64": true, "ExpFloat64": true, "Seed": true,
	"N": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !analysis.IsInternalSimPath(path) {
		return nil
	}
	if strings.HasPrefix(path, "repro/internal/runner") {
		return nil // the runner orchestrates real concurrency by design
	}
	for _, file := range pass.Files {
		allowConcurrency := path == "repro/internal/core" &&
			filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "measure.go"
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, allowConcurrency)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, allowConcurrency bool) {
	sorted := sortedSlices(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !allowConcurrency {
				pass.Reportf(n.Pos(), "bare goroutine in simulator code: concurrency is reserved for internal/runner and core's measurement fan-out")
			}
		case *ast.CallExpr:
			checkBannedCall(pass, n, allowConcurrency)
		case *ast.RangeStmt:
			checkRange(pass, n, sorted)
		}
		return true
	})
}

// checkBannedCall flags wall-clock and global-rand calls. allowHost is
// true only for core/measure.go — the same file whose measurement
// fan-out is the sanctioned concurrency exception — where obs wall-time
// diagnostics (Trace.Wall) may read the host clock; those readings
// never feed simulation state and are excluded from trace exporters.
func checkBannedCall(pass *analysis.Pass, call *ast.CallExpr, allowHost bool) {
	ref := analysis.Callee(pass.Info, call)
	if ref.Recv != "" {
		return
	}
	switch {
	case ref.Pkg == "time" && bannedTime[ref.Name]:
		if allowHost {
			return
		}
		pass.Reportf(call.Pos(), "time.%s in simulator code: use the simtime.Scheduler clock", ref.Name)
	case (ref.Pkg == "math/rand" || ref.Pkg == "math/rand/v2") && bannedRand[ref.Name]:
		pass.Reportf(call.Pos(), "global %s.%s draw: use a seeded *simtime.Rand", filepath.Base(ref.Pkg), ref.Name)
	}
}

// sortedSlices collects variables passed to sort.* or slices.* anywhere
// in the function: appending to one of these inside a map range is the
// sanctioned collect-then-sort pattern.
func sortedSlices(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ref := analysis.Callee(pass.Info, call)
		if ref.Pkg != "sort" && ref.Pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v, ok := pass.Info.Uses[id].(*types.Var); ok {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[*types.Var]bool) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok || !analysis.IsMapType(tv.Type) {
		return
	}
	if _, ok := pass.Directive(rng.Pos(), "ordered"); ok {
		return
	}
	var keyVar *types.Var
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		keyVar, _ = pass.Info.Defs[id].(*types.Var)
		if keyVar == nil {
			keyVar, _ = pass.Info.Uses[id].(*types.Var)
		}
	}
	c := &rangeChecker{pass: pass, rng: rng, keyVar: keyVar, sorted: sorted}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.IncDecStmt:
			c.checkWrite(n.X, n.Pos(), token.INC)
		}
		return true
	})
}

type rangeChecker struct {
	pass   *analysis.Pass
	rng    *ast.RangeStmt
	keyVar *types.Var
	sorted map[*types.Var]bool
}

func (c *rangeChecker) reportf(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, "map iteration order is not deterministic: "+format+
		" (sort the keys first, or mark //mmlint:ordered with justification)", args...)
}

func (c *rangeChecker) checkCall(call *ast.CallExpr) {
	ref := analysis.Callee(c.pass.Info, call)
	if isEffect(ref) {
		name := ref.Name
		if ref.Recv != "" {
			name = ref.Recv + "." + name
		}
		c.reportf(call.Pos(), "%s inside a map range draws rng, arms events or emits output in map order", name)
		return
	}
	// delete(m, k) for k == the range key is per-key and allowed; any
	// other delete mutates map state in iteration order.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
			if len(call.Args) == 2 && c.isKeyExpr(call.Args[1]) {
				return
			}
			c.reportf(call.Pos(), "delete with a non-range-key inside a map range")
		}
	}
}

func (c *rangeChecker) checkAssign(a *ast.AssignStmt) {
	for i, lhs := range a.Lhs {
		// `xs = append(xs, ...)` is judged by the collect-then-sort rule,
		// not the plain-store rule: allowed iff xs is sorted later in the
		// same function.
		if i < len(a.Rhs) && c.isAppendOf(a.Rhs[i], lhs) {
			if lv := c.identVar(lhs); lv != nil && !c.sorted[lv] && !c.isLoopLocal(lv) {
				c.reportf(a.Rhs[i].Pos(), "append to %s which is never sorted in this function", lv.Name())
			}
			continue
		}
		c.checkWrite(lhs, a.Pos(), a.Tok)
	}
}

// isAppendOf reports whether rhs is `append(lhs, ...)`.
func (c *rangeChecker) isAppendOf(rhs, lhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := c.pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	lv := c.identVar(lhs)
	return lv != nil && lv == c.identVar(call.Args[0])
}

// checkWrite flags order-dependent writes to non-local state. Allowed:
// writes to variables declared inside the loop body, lvalues indexed by
// the range key (per-key, commutative across iterations), integer
// +=/-=/|=/++/-- (commutative and associative), and stores of constants
// (idempotent flag sets).
func (c *rangeChecker) checkWrite(lhs ast.Expr, pos token.Pos, tok token.Token) {
	lhs = ast.Unparen(lhs)
	switch l := lhs.(type) {
	case *ast.Ident:
		v, _ := c.pass.Info.Defs[l].(types.Object)
		if v != nil {
			return // := declares a new (loop-local) variable
		}
		uv, _ := c.pass.Info.Uses[l].(*types.Var)
		if uv == nil || c.isLoopLocal(uv) {
			return
		}
		if c.commutativeTok(tok, uv.Type()) {
			return
		}
		c.reportf(pos, "order-dependent write to %s", uv.Name())
	case *ast.IndexExpr:
		if c.isKeyExpr(l.Index) {
			return // m2[k] = ... is per-key
		}
		base := c.identVar(l.X)
		if base != nil && c.isLoopLocal(base) {
			return
		}
		if bs, ok := ast.Unparen(l.X).(*ast.SelectorExpr); ok {
			_ = bs // field-based map/slice: same rules as below
		}
		if c.commutativeTok(tok, exprType(c.pass, lhs)) {
			return
		}
		c.reportf(pos, "order-dependent indexed write not keyed by the range key")
	case *ast.SelectorExpr:
		base := c.identVar(l.X)
		if base != nil && c.isLoopLocal(base) {
			return
		}
		if c.commutativeTok(tok, exprType(c.pass, lhs)) {
			return
		}
		c.reportf(pos, "order-dependent write to %s", l.Sel.Name)
	case *ast.StarExpr:
		c.reportf(pos, "order-dependent write through a pointer")
	}
}

// commutativeTok reports whether the assignment operator applied to this
// type is order-independent across iterations: integer accumulation and
// bitwise-or are commutative and associative; everything else (plain
// stores, float accumulation, string building) is not. Plain stores are
// handled separately by the caller via constant detection — here only
// compound tokens qualify.
func (c *rangeChecker) commutativeTok(tok token.Token, t types.Type) bool {
	switch tok {
	case token.INC, token.DEC:
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	}
	return false
}

func (c *rangeChecker) isKeyExpr(e ast.Expr) bool {
	if c.keyVar == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	v, _ := c.pass.Info.Uses[id].(*types.Var)
	return v == c.keyVar
}

func (c *rangeChecker) identVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := c.pass.Info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := c.pass.Info.Defs[id].(*types.Var)
	return v
}

// isLoopLocal reports whether the variable is declared inside the range
// statement — the body, or the range clause itself (key/value variables
// are fresh copies each iteration): its writes cannot leak iteration
// order out of the loop.
func (c *rangeChecker) isLoopLocal(v *types.Var) bool {
	return v.Pos() >= c.rng.Pos() && v.Pos() <= c.rng.Body.End()
}

func exprType(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
