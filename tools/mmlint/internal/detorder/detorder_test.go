package detorder_test

import (
	"testing"

	"repro/tools/mmlint/internal/analysis/atest"
	"repro/tools/mmlint/internal/detorder"
)

func TestDetOrder(t *testing.T) {
	atest.Run(t, "../../testdata", detorder.Analyzer, "repro/internal/dofix")
}
