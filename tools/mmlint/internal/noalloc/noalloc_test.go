package noalloc_test

import (
	"testing"

	"repro/tools/mmlint/internal/analysis/atest"
	"repro/tools/mmlint/internal/noalloc"
)

func TestNoAlloc(t *testing.T) {
	atest.Run(t, "../../testdata", noalloc.Analyzer, "repro/internal/nafix")
}
