// Package noalloc checks functions annotated //mmlint:noalloc for
// syntactic allocation sites. The annotation marks steady-state hot
// paths (scheduler fire/arm, link send/deliver, tick-group advance,
// handoff Evaluate) whose zero-allocation behaviour is pinned at runtime
// by testing.AllocsPerRun; this analyzer keeps the property visible at
// every call-site-free edit in between.
//
// Flagged inside an annotated function: make, new, slice/map composite
// literals, &T{...}, append, string concatenation, closures that capture
// local variables, and interface conversions that box a non-pointer-
// shaped value. Plain value composites (Event{...}) stay on the stack
// and are allowed, as are calls — the runtime pin covers callees.
//
// A site that must allocate (amortized arena growth, error paths) is
// waived with `//mmlint:alloc-ok <reason>` on the line or the line
// above; the reason is mandatory.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/mmlint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flag syntactic allocation in functions annotated //mmlint:noalloc",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := analysis.DocDirective(fd.Doc, "noalloc"); !ok {
				continue
			}
			c := &checker{pass: pass, fn: fd}
			c.block(fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
}

// flag reports an allocation site unless an alloc-ok waiver with a
// reason covers the position.
func (c *checker) flag(pos token.Pos, format string, args ...any) {
	if reason, ok := c.pass.Directive(pos, "alloc-ok"); ok {
		if reason == "" {
			c.pass.Reportf(pos, "mmlint:alloc-ok waiver requires a reason")
		}
		return
	}
	c.pass.Reportf(pos, format+" in //mmlint:noalloc function %s", append(args, c.fn.Name.Name)...)
}

// block walks statements, skipping nested function literal bodies (the
// literal itself is checked for captures where it appears).
func (c *checker) block(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.funcLit(n)
			return false // body runs elsewhere; its allocs are its own
		case *ast.CallExpr:
			c.call(n)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.flag(n.Pos(), "heap-escaping &composite literal")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(exprType(c.pass, n)) {
				c.flag(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.ReturnStmt:
			c.returnStmt(n)
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.flag(call.Pos(), "make")
			case "new":
				c.flag(call.Pos(), "new")
			case "append":
				c.flag(call.Pos(), "append (may grow)")
			}
			return
		}
	}
	// Interface conversion: T(x) where T is an interface.
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(tv.Type, exprType(c.pass, call.Args[0])) {
			c.flag(call.Pos(), "interface conversion boxes a value")
		}
		return
	}
	// Argument boxing at interface-typed parameters.
	sig := callSignature(c.pass, call)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if boxes(pt, exprType(c.pass, arg)) {
			c.flag(arg.Pos(), "argument boxes a value into an interface")
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= np {
		c.flag(call.Pos(), "variadic call allocates its argument slice")
	}
}

func (c *checker) composite(lit *ast.CompositeLit) {
	t := exprType(c.pass, lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.flag(lit.Pos(), "slice literal")
	case *types.Map:
		c.flag(lit.Pos(), "map literal")
	}
}

// funcLit flags closures that capture variables local to the enclosing
// function: those allocate a closure object (and often move the captured
// variable to the heap). Non-capturing literals compile to plain funcs.
func (c *checker) funcLit(lit *ast.FuncLit) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured != "" {
			return captured == ""
		}
		v, ok := c.pass.Info.Uses[id].(*types.Var)
		if !ok || v.Parent() == nil {
			return true
		}
		// Captured iff declared in the enclosing function but outside the
		// literal. Package-level vars don't force a closure allocation.
		if v.Pos() >= c.fn.Pos() && v.Pos() < lit.Pos() && !v.IsField() {
			captured = v.Name()
		}
		return true
	})
	if captured != "" {
		c.flag(lit.Pos(), "closure captures %s", captured)
	}
}

func (c *checker) assign(a *ast.AssignStmt) {
	if a.Tok == token.ADD_ASSIGN && len(a.Lhs) == 1 && isString(exprType(c.pass, a.Lhs[0])) {
		c.flag(a.Pos(), "string concatenation")
	}
	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) {
			break
		}
		if boxes(lvalueType(c.pass, lhs, a), exprType(c.pass, a.Rhs[i])) {
			c.flag(a.Rhs[i].Pos(), "assignment boxes a value into an interface")
		}
	}
}

func (c *checker) returnStmt(r *ast.ReturnStmt) {
	sig := c.funcSig()
	if sig == nil || len(r.Results) != sig.Results().Len() {
		return
	}
	for i, res := range r.Results {
		if boxes(sig.Results().At(i).Type(), exprType(c.pass, res)) {
			c.flag(res.Pos(), "return boxes a value into an interface")
		}
	}
}

func (c *checker) funcSig() *types.Signature {
	fn, _ := c.pass.Info.Defs[c.fn.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// boxes reports whether storing a value of type src into dst allocates:
// dst is an interface, src is a concrete type whose values are not
// pointer-shaped.
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if !types.IsInterface(dst) || types.IsInterface(src) {
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !analysis.IsPointerShaped(src)
}

func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func lvalueType(pass *analysis.Pass, e ast.Expr, a *ast.AssignStmt) types.Type {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && a.Tok == token.DEFINE {
		if v, ok := pass.Info.Defs[id].(*types.Var); ok {
			return v.Type()
		}
	}
	return exprType(pass, e)
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func exprType(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
