// Package simtimeonly fences the simulator's single source of time.
// Everything under repro/internal/ except internal/simtime itself must
// route timing through the simtime.Scheduler:
//
//   - the wall-clock timer surface of package time (NewTimer, NewTicker,
//     AfterFunc, After, Tick, Sleep) is banned, as are references to the
//     time.Timer and time.Ticker types;
//   - importing container/heap is banned — the scheduler's 4-ary heap is
//     the only priority queue, and a second one would fork the notion of
//     "next event";
//   - constructing simtime.Ticker directly (composite literal or new) is
//     banned: tickers are armed by Scheduler.Every so they enter the
//     tick-group machinery;
//   - non-zero simtime.Event composite literals are banned: events are
//     minted by the scheduler so sequence numbers stay dense. The zero
//     Event{} is allowed (it is the documented "no event" value).
package simtimeonly

import (
	"go/ast"
	"go/types"

	"repro/tools/mmlint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "simtimeonly",
	Doc:  "forbid wall-clock timers, second heaps and hand-built simtime values outside internal/simtime",
	Run:  run,
}

const simtimePkg = "repro/internal/simtime"

var bannedTimeFuncs = map[string]bool{
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
	"After": true, "Tick": true, "Sleep": true,
}

var bannedTimeTypes = map[string]bool{"Timer": true, "Ticker": true}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !analysis.IsInternalSimPath(path) || path == simtimePkg {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			if imp.Path.Value == `"container/heap"` {
				pass.Reportf(imp.Pos(), "container/heap import: the simtime scheduler owns the only event heap")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.Ident:
				checkTypeRef(pass, n)
			case *ast.CompositeLit:
				checkComposite(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	ref := analysis.Callee(pass.Info, call)
	if ref.Pkg == "time" && ref.Recv == "" && bannedTimeFuncs[ref.Name] {
		pass.Reportf(call.Pos(), "time.%s in simulator code: arm a simtime.Scheduler event instead", ref.Name)
		return
	}
	// new(simtime.Ticker) builds an unarmed ticker outside the scheduler.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "new" && len(call.Args) == 1 {
			if tv, ok := pass.Info.Types[call.Args[0]]; ok && analysis.IsNamedType(tv.Type, simtimePkg, "Ticker") {
				pass.Reportf(call.Pos(), "new(simtime.Ticker): tickers must come from Scheduler.Every")
			}
		}
	}
}

func checkTypeRef(pass *analysis.Pass, id *ast.Ident) {
	tn, ok := pass.Info.Uses[id].(*types.TypeName)
	if !ok || tn.Pkg() == nil || tn.Pkg().Path() != "time" || !bannedTimeTypes[tn.Name()] {
		return
	}
	pass.Reportf(id.Pos(), "time.%s in simulator code: use simtime.Ticker armed by Scheduler.Every", tn.Name())
}

func checkComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	switch {
	case analysis.IsNamedType(tv.Type, simtimePkg, "Ticker"):
		pass.Reportf(lit.Pos(), "simtime.Ticker composite literal: tickers must come from Scheduler.Every")
	case analysis.IsNamedType(tv.Type, simtimePkg, "Event") && len(lit.Elts) > 0:
		pass.Reportf(lit.Pos(), "non-zero simtime.Event literal: events are minted by the scheduler (the zero Event{} is the only hand-written value)")
	}
}
