package simtimeonly_test

import (
	"testing"

	"repro/tools/mmlint/internal/analysis/atest"
	"repro/tools/mmlint/internal/simtimeonly"
)

func TestSimtimeOnly(t *testing.T) {
	atest.Run(t, "../../testdata", simtimeonly.Analyzer, "repro/internal/stfix")
}
