// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that mmlint's checkers program
// against. The container this repo builds in has no module proxy access,
// so the framework is grown from the standard library instead: go/parser
// and go/types provide syntax and type information, and `go list -export`
// provides export data for imports (see load.go). Analyzers see the same
// (Files, Pkg, Info, Report) world an x/tools analyzer would, which keeps
// a later migration to the real framework mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "packetrelease"
	Doc  string // one-paragraph description shown by -help
	Run  func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Pass carries one package's worth of context to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
	dirs   *directiveIndex
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Directive returns the argument text of an `//mmlint:<name>` comment
// attached to the line of pos or the line immediately above it, and
// whether such a comment exists. The argument is the trimmed remainder of
// the comment ("" for a bare directive).
func (p *Pass) Directive(pos token.Pos, name string) (string, bool) {
	if p.dirs == nil {
		p.dirs = indexDirectives(p.Fset, p.Files)
	}
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		if arg, ok := p.dirs.at(position.Filename, line, name); ok {
			return arg, true
		}
	}
	return "", false
}

// DocDirective reports whether the doc comment group carries an
// `//mmlint:<name>` directive, returning its argument text.
func DocDirective(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if arg, ok := parseDirective(c.Text, name); ok {
			return arg, true
		}
	}
	return "", false
}

// directiveIndex maps (file, line) to the mmlint directives on that line.
type directiveIndex struct {
	// byLine maps filename -> line -> "name\x00arg" entries.
	byLine map[string]map[int][]string
}

func (d *directiveIndex) at(file string, line int, name string) (string, bool) {
	for _, entry := range d.byLine[file][line] {
		n, arg, _ := strings.Cut(entry, "\x00")
		if n == name {
			return arg, true
		}
	}
	return "", false
}

func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, arg, ok := splitDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				m := idx.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					idx.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], name+"\x00"+arg)
			}
		}
	}
	return idx
}

// splitDirective parses "//mmlint:name arg..." comment text.
func splitDirective(text string) (name, arg string, ok bool) {
	rest, found := strings.CutPrefix(text, "//mmlint:")
	if !found {
		return "", "", false
	}
	name, arg, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(arg), name != ""
}

// parseDirective matches one comment line against a directive name.
func parseDirective(text, want string) (string, bool) {
	name, arg, ok := splitDirective(text)
	if !ok || name != want {
		return "", false
	}
	return arg, true
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position then analyzer then message.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	SortDiagnostics(pkgs, diags)
	return diags, nil
}

// SortDiagnostics orders findings by file position, analyzer and message,
// resolving positions through each package's FileSet.
func SortDiagnostics(pkgs []*Package, diags []Diagnostic) {
	posn := func(d Diagnostic) token.Position {
		for _, p := range pkgs {
			if f := p.Fset.File(d.Pos); f != nil {
				return p.Fset.Position(d.Pos)
			}
		}
		return token.Position{}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := posn(diags[i]), posn(diags[j])
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}
