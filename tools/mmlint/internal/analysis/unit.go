package analysis

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON configuration file `go vet -vettool` hands to
// an analysis tool (one file per package, argument ends in ".cfg"). Field
// names follow cmd/go's vetConfig / x/tools unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes the analyzers under the go vet driver protocol: read
// the package config, type-check from the provided file lists with
// imports resolved through the compiler's export data, print findings to
// stderr, and exit non-zero when any finding exists. mmlint keeps no
// cross-package facts, so the vetx output is always an empty placeholder
// (vet requires the file to exist for caching).
func RunUnit(cfgPath string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("mmlint: %v", err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatalf("mmlint: parsing %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("mmlint-no-facts\n"), 0o666); err != nil {
			fatalf("mmlint: %v", err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}
	// vet also routes test packages and test-augmented package variants
	// through the tool (same ID and ImportPath as the base package, test
	// files appended to GoFiles). mmlint guards production invariants
	// only — test code may use wall clocks, goroutines and ad-hoc packet
	// handling — so test files are dropped, matching the standalone
	// loader's policy. External test packages become empty and are
	// skipped outright.
	goFiles := cfg.GoFiles[:0:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	cfg.GoFiles = goFiles
	if len(cfg.GoFiles) == 0 || strings.HasSuffix(cfg.ImportPath, ".test") {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, lookup)
	pkg, err := typecheck(fset, cfg.ImportPath, "", cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fatalf("mmlint: %v", err)
	}
	// Skip the vendored std packages vet also feeds through the tool.
	if cfg.Standard[cfg.ImportPath] {
		os.Exit(0)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, analyzers)
	if err != nil {
		fatalf("mmlint: %v", err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
