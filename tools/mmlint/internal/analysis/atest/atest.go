// Package atest is mmlint's analysistest: it loads GOPATH-style fixture
// packages from a testdata/src tree, runs one analyzer over the named
// packages, and compares the findings against `// want "regex"` comments
// in the fixture source.
//
// Fixture packages may import each other (resolved from testdata/src —
// stub versions of repro/internal/... live there so the facts tables
// match by import path) and the standard library (resolved through the
// build cache's export data, see analysis.StdExports).
package atest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/tools/mmlint/internal/analysis"
)

// Run checks analyzer a against the fixture packages at the given import
// paths under testdata/src.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := newLoader(root)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		check(t, pkg, diags)
	}
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants parses `// want "regex" ["regex" ...]` comments. The
// expectation is anchored to the comment's line.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range stringLits(rest) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

var litRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func stringLits(s string) []string { return litRE.FindAllString(s, -1) }

// loader resolves fixture packages from root and std packages from
// export data, caching across load calls so shared stubs type-check once.
type loader struct {
	root   string
	fset   *token.FileSet
	pkgs   map[string]*analysis.Package
	stdImp types.Importer
}

func newLoader(root string) (*loader, error) {
	std, err := stdImports(root)
	if err != nil {
		return nil, err
	}
	exports, err := analysis.StdExports(std)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		root:   root,
		fset:   fset,
		pkgs:   make(map[string]*analysis.Package),
		stdImp: analysis.ExportImporter(fset, exports),
	}, nil
}

// stdImports scans every fixture file for imports that do not resolve
// inside the testdata tree.
func stdImports(root string) ([]string, error) {
	seen := make(map[string]bool)
	var std []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if seen[p] {
				continue
			}
			seen[p] = true
			if _, statErr := os.Stat(filepath.Join(root, p)); statErr != nil {
				std = append(std, p)
			}
		}
		return nil
	})
	return std, err
}

func (ld *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	pkg := &analysis.Package{Path: path, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// Import makes the loader a types.Importer for fixture dependencies.
func (ld *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.root, path)); err == nil {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.stdImp.Import(path)
}
