package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage mirrors the subset of `go list -json` output the loader
// needs. Export is the build-cache export-data file for the compiled
// package; the gc importer reads dependency types from it, so loading
// needs no network and no source type-checking of the standard library.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (resolved relative to
// dir) and returns them in `go list` order. Test files are not loaded —
// mmlint guards the simulator's production invariants, and test code
// legitimately uses wall-clock time and ad-hoc concurrency.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		pkg, err := typecheck(fset, lp.ImportPath, lp.Dir, lp.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one package from source.
func typecheck(fset *token.FileSet, path, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo returns a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ExportImporter returns a types.Importer that reads dependency types
// from gc export-data files, keyed by import path. The atest harness
// uses it for standard-library imports in fixture packages.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return exportImporter(fset, exports)
}

// exportImporter returns a types.Importer that reads dependency types
// from gc export-data files, keyed by import path.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// StdExports runs `go list -export` for the given standard-library
// packages (plus transitive deps) and returns the export-data file map.
// The fixture test harness uses it to resolve std imports in testdata
// packages without type-checking the standard library from source.
func StdExports(pkgs []string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-export", "-json", "-deps"}, pkgs...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list std: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// IsInternalSimPath reports whether pkgPath is simulator-internal code —
// the scope where the determinism and simtime bans apply. Fixture
// packages under testdata mirror the real layout, so the check is a pure
// string-prefix test on the import path.
func IsInternalSimPath(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "repro/internal/")
}
