package analysis

import (
	"go/ast"
	"go/types"
)

// FuncRef names a function or method by package path, receiver type name
// ("" for package-level functions) and function name. Interface methods
// use the interface type's name as Recv, so a call through the interface
// matches the same key as the declaration.
type FuncRef struct {
	Pkg  string
	Recv string
	Name string
}

// Callee resolves the function a call expression invokes, looking through
// parentheses. It returns the zero FuncRef for calls it cannot name:
// builtins, type conversions, function-valued variables and closures.
func Callee(info *types.Info, call *ast.CallExpr) FuncRef {
	fn := typeutilCallee(info, call)
	if fn == nil {
		return FuncRef{}
	}
	return refOf(fn)
}

// typeutilCallee is x/tools' typeutil.Callee, re-derived from go/types.
func typeutilCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // qualified identifier pkg.Func
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// refOf names a *types.Func as a FuncRef.
func refOf(fn *types.Func) FuncRef {
	ref := FuncRef{Name: fn.Name()}
	if pkg := fn.Pkg(); pkg != nil {
		ref.Pkg = pkg.Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		ref.Recv = namedName(sig.Recv().Type())
	}
	return ref
}

// DeclRef names a function declaration as a FuncRef, using the same
// naming scheme as Callee so facts tables match both sides.
func DeclRef(info *types.Info, decl *ast.FuncDecl) FuncRef {
	fn, _ := info.Defs[decl.Name].(*types.Func)
	if fn == nil {
		return FuncRef{}
	}
	return refOf(fn)
}

// namedName returns the base named-type name of t, looking through one
// pointer indirection ("Packet" for both packet.Packet and
// *packet.Packet), or "" for unnamed types.
func namedName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// IsNamedType reports whether t (after stripping one pointer level) is
// the named type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsMapType reports whether t's underlying type is a map.
func IsMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// IsPointerShaped reports whether boxing a value of type t into an
// interface stores the value directly in the interface word (no heap
// allocation): pointers, maps, channels, functions and unsafe pointers.
func IsPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil
	}
	return false
}
