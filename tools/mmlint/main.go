// Command mmlint is the repository's domain linter: a multichecker that
// proves the simulator's ownership, determinism and no-alloc invariants
// at compile time.
//
// Two modes:
//
//	mmlint ./...                     standalone: load, check, print findings
//	go vet -vettool=$(pwd)/bin/mmlint ./...   vet driver protocol
//
// Analyzers: packetrelease (every produced *packet.Packet reaches Release
// or an ownership sink on all paths), detorder (no nondeterministic map
// iteration, wall clocks, global rand or bare goroutines), noalloc
// (//mmlint:noalloc functions stay allocation-free), simtimeonly (all
// timing flows through internal/simtime).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tools/mmlint/internal/analysis"
	"repro/tools/mmlint/internal/detorder"
	"repro/tools/mmlint/internal/noalloc"
	"repro/tools/mmlint/internal/packetrelease"
	"repro/tools/mmlint/internal/simtimeonly"
)

var analyzers = []*analysis.Analyzer{
	packetrelease.Analyzer,
	detorder.Analyzer,
	noalloc.Analyzer,
	simtimeonly.Analyzer,
}

func main() {
	args := os.Args[1:]

	// go vet handshake: it runs `mmlint -V=full` once to derive a cache
	// key, then re-invokes the tool with a single *.cfg argument per
	// package. The version line hashes the executable so edits to the
	// linter invalidate vet's result cache.
	if len(args) == 1 && args[0] == "-V=full" {
		fmt.Printf("mmlint version devel buildID=%s\n", selfHash())
		return
	}
	// cmd/go also probes `mmlint -flags` for tool-specific flags (JSON).
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		analysis.RunUnit(args[0], analyzers)
		return
	}

	fs := flag.NewFlagSet("mmlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mmlint [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	_ = fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmlint: %v\n", err)
		os.Exit(1)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmlint: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", position(pkgs, d), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func position(pkgs []*analysis.Package, d analysis.Diagnostic) string {
	for _, p := range pkgs {
		if f := p.Fset.File(d.Pos); f != nil {
			return p.Fset.Position(d.Pos).String()
		}
	}
	return "-"
}

func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:12])
}
