// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON document mapping each benchmark to its ns/op, B/op and
// allocs/op. The Makefile's bench-json target pipes the experiment
// benchmarks through it to produce BENCH_<n>.json snapshots, so the
// repository tracks the performance trajectory PR over PR.
//
// Usage:
//
//	go test -bench 'E[0-9]' -benchtime 1x -benchmem -run '^$' . | go run ./tools/benchjson > BENCH_2.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line's measurements.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output and returns the report with its
// results sorted by benchmark name, so snapshots diff cleanly PR to PR.
func parse(in io.Reader) (Report, error) {
	rep := Report{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Name < rep.Results[j].Name })
	return rep, nil
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkE6SchemeComparison-8  3  736063066 ns/op  286013856 B/op  4522096 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Name: strings.TrimSuffix(fields[0], cpuSuffix(fields[0]))}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = n
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, r.NsPerOp > 0
}

// cpuSuffix returns the trailing "-<gomaxprocs>" tag of a benchmark name
// (empty when absent) so names stay stable across machines.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
