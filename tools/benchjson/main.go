// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON document mapping each benchmark to its ns/op, B/op and
// allocs/op. The Makefile's bench-json target pipes the experiment
// benchmarks through it to produce BENCH_<n>.json snapshots, so the
// repository tracks the performance trajectory PR over PR.
//
// With -compare it becomes the CI benchmark-regression gate: instead of
// emitting JSON it compares the fresh run on stdin against a committed
// BENCH_*.json baseline and exits non-zero when any gated benchmark's
// ns/op regressed beyond -limit (or its allocs/op regressed at all
// beyond the same fraction).
//
// Usage:
//
//	go test -bench 'E[0-9]' -benchtime 1x -benchmem -run '^$' . | go run ./tools/benchjson > BENCH_2.json
//	go test -bench 'E6|E9|E10' -benchtime 3x -benchmem -run '^$' . | \
//	    go run ./tools/benchjson -compare BENCH_5.json -limit 0.15 -only BenchmarkE6,BenchmarkE9,BenchmarkE10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line's measurements.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document. The provenance fields (GoVersion,
// GitCommit) identify the toolchain and tree that produced a snapshot;
// -compare ignores them, so old baselines without the fields and new
// ones with them interoperate freely.
type Report struct {
	Goos      string   `json:"goos,omitempty"`
	Goarch    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	GoVersion string   `json:"go_version,omitempty"`
	GitCommit string   `json:"git_commit,omitempty"`
	Results   []Result `json:"results"`
}

// stamp records the producing toolchain and, when available, the git
// commit of the working tree. Both are best-effort provenance: a missing
// git binary or a non-repo working directory just leaves the field
// empty.
func (r *Report) stamp() {
	r.GoVersion = runtime.Version()
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err == nil {
		r.GitCommit = strings.TrimSpace(string(out))
	}
}

func main() {
	var (
		baseline = flag.String("compare", "", "compare stdin's bench output against this BENCH_*.json baseline instead of emitting JSON; exit 1 on regression")
		limit    = flag.Float64("limit", 0.15, "with -compare, the maximum tolerated fractional regression (0.15 = +15%)")
		only     = flag.String("only", "BenchmarkE6,BenchmarkE9,BenchmarkE10", "with -compare, comma-separated benchmark name prefixes to gate")
	)
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		failures, err := compare(*baseline, rep, *limit, strings.Split(*only, ","), os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%\n", failures, 100**limit)
			os.Exit(1)
		}
		return
	}
	rep.stamp()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// gated reports whether a benchmark name falls under the gate: it starts
// with one of the configured prefixes (ignoring empty entries).
func gated(name string, prefixes []string) bool {
	for _, p := range prefixes {
		p = strings.TrimSpace(p)
		if p != "" && strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// compare checks the fresh report against the baseline file and returns
// the number of gated regressions. ns/op may grow by at most limit;
// allocs/op is held to the same fraction (alloc counts are stable, so
// any real growth there is a code change, not noise). Gated benchmarks
// present in the baseline but missing from the fresh run fail too —
// a silently dropped benchmark must not pass the gate. Fresh benchmarks
// without a baseline entry are reported and skipped.
//
// Absolute ns/op is only meaningful on the hardware that recorded the
// baseline: when the CPU strings differ, ns/op comparisons are reported
// but downgraded to advisory, and only the machine-independent allocs/op
// check can fail the gate.
func compare(baselinePath string, fresh Report, limit float64, prefixes []string, w io.Writer) (int, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return 0, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	// Unknown machine identity (either CPU string empty) is treated like
	// a mismatch: strict ns/op gating is only honest when the run
	// provably happened on the hardware that recorded the baseline.
	nsAdvisory := base.CPU == "" || fresh.CPU == "" || base.CPU != fresh.CPU
	if nsAdvisory {
		fmt.Fprintf(w, "benchjson: baseline CPU %q vs current %q — ns/op comparisons are advisory, only allocs/op can fail the gate\n",
			base.CPU, fresh.CPU)
	}
	// The gate runs benchmarks with -count > 1 and keeps each name's
	// fastest observation: the minimum is the least-noise estimate of a
	// benchmark's true cost, so a loaded CI machine doesn't flag phantom
	// regressions (real regressions slow every repetition).
	freshBy := make(map[string]Result, len(fresh.Results))
	for _, r := range fresh.Results {
		best, ok := freshBy[r.Name]
		if !ok || r.NsPerOp < best.NsPerOp {
			if ok && best.AllocsPerOp < r.AllocsPerOp {
				r.AllocsPerOp = best.AllocsPerOp
			}
			freshBy[r.Name] = r
		} else if r.AllocsPerOp < best.AllocsPerOp {
			best.AllocsPerOp = r.AllocsPerOp
			freshBy[r.Name] = best
		}
	}
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	failures := 0
	for _, b := range base.Results {
		if !gated(b.Name, prefixes) {
			continue
		}
		f, ok := freshBy[b.Name]
		if !ok {
			fmt.Fprintf(w, "FAIL %s: gated benchmark missing from this run\n", b.Name)
			failures++
			continue
		}
		nsRatio := f.NsPerOp/b.NsPerOp - 1
		status := "ok"
		fail := false
		if nsRatio > limit && !nsAdvisory {
			status = "FAIL"
			fail = true
		}
		allocNote := ""
		if b.AllocsPerOp > 0 {
			allocRatio := f.AllocsPerOp/b.AllocsPerOp - 1
			allocNote = fmt.Sprintf(", allocs %+.1f%%", 100*allocRatio)
			if allocRatio > limit {
				status = "FAIL"
				fail = true
			}
		}
		fmt.Fprintf(w, "%-4s %s: ns/op %.0f -> %.0f (%+.1f%%)%s\n",
			status, b.Name, b.NsPerOp, f.NsPerOp, 100*nsRatio, allocNote)
		if fail {
			failures++
		}
	}
	for _, f := range fresh.Results {
		if !gated(f.Name, prefixes) {
			continue
		}
		if _, ok := baseBy[f.Name]; !ok {
			fmt.Fprintf(w, "new  %s: no baseline entry, skipped\n", f.Name)
		}
	}
	return failures, nil
}

// parse reads `go test -bench` output and returns the report with its
// results sorted by benchmark name, so snapshots diff cleanly PR to PR.
func parse(in io.Reader) (Report, error) {
	rep := Report{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Name < rep.Results[j].Name })
	return rep, nil
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkE6SchemeComparison-8  3  736063066 ns/op  286013856 B/op  4522096 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Name: strings.TrimSuffix(fields[0], cpuSuffix(fields[0]))}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = n
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, r.NsPerOp > 0
}

// cpuSuffix returns the trailing "-<gomaxprocs>" tag of a benchmark name
// (empty when absent) so names stay stable across machines.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
