package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// canned is a real-shaped `go test -bench -benchmem` transcript: header
// lines, benchmark results with and without allocation columns, a
// sub-benchmark with a slash name, PASS/ok trailers, and noise that the
// parser must skip.
const canned = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkE6SchemeComparison-8  	       3	 736063066 ns/op	286013856 B/op	 4522096 allocs/op
BenchmarkE1MobileIPRegistration-8   	      12	  95474148 ns/op	 1474556 B/op	   18279 allocs/op
BenchmarkScenarioPerScheme/multitier-rsmc-8 	       5	 223456789 ns/op
BenchmarkSchedulerEventChurn-8	 5000000	       231 ns/op	       0 B/op	       0 allocs/op
BenchmarkBroken-8	not-a-number	 100 ns/op
PASS
ok  	repro	12.345s
`

func TestParseCannedOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("header = %q/%q", rep.Goos, rep.Goarch)
	}
	if rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("parsed %d results, want 4 (broken line must be skipped): %+v", len(rep.Results), rep.Results)
	}
	// Results are sorted by name and the -8 cpu suffix is stripped.
	wantNames := []string{
		"BenchmarkE1MobileIPRegistration",
		"BenchmarkE6SchemeComparison",
		"BenchmarkScenarioPerScheme/multitier-rsmc",
		"BenchmarkSchedulerEventChurn",
	}
	for i, want := range wantNames {
		if rep.Results[i].Name != want {
			t.Fatalf("result %d name = %q, want %q", i, rep.Results[i].Name, want)
		}
	}
	e6 := rep.Results[1]
	if e6.Iterations != 3 || e6.NsPerOp != 736063066 || e6.BytesPerOp != 286013856 || e6.AllocsPerOp != 4522096 {
		t.Fatalf("E6 measurements wrong: %+v", e6)
	}
	// A line without -benchmem columns still parses ns/op.
	sub := rep.Results[2]
	if sub.NsPerOp != 223456789 || sub.BytesPerOp != 0 || sub.AllocsPerOp != 0 {
		t.Fatalf("sub-bench measurements wrong: %+v", sub)
	}
}

func TestParseEmittedJSONRoundTrips(t *testing.T) {
	rep, err := parse(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not round trip: %v\n%s", err, buf.String())
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip lost results: %d -> %d", len(rep.Results), len(back.Results))
	}
	// Omitted-zero fields: the alloc-free benchmark keeps explicit zeros
	// out of the document.
	if strings.Contains(buf.String(), `"bytes_per_op": 0`) {
		t.Fatalf("zero B/op not omitted:\n%s", buf.String())
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("empty input produced %d results", len(rep.Results))
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8",                   // too few fields
		"BenchmarkX-8 abc 100 ns/op",     // bad iteration count
		"BenchmarkX-8 3 garbage garbage", // no ns/op measurement
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
