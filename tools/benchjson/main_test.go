package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// canned is a real-shaped `go test -bench -benchmem` transcript: header
// lines, benchmark results with and without allocation columns, a
// sub-benchmark with a slash name, PASS/ok trailers, and noise that the
// parser must skip.
const canned = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkE6SchemeComparison-8  	       3	 736063066 ns/op	286013856 B/op	 4522096 allocs/op
BenchmarkE1MobileIPRegistration-8   	      12	  95474148 ns/op	 1474556 B/op	   18279 allocs/op
BenchmarkScenarioPerScheme/multitier-rsmc-8 	       5	 223456789 ns/op
BenchmarkSchedulerEventChurn-8	 5000000	       231 ns/op	       0 B/op	       0 allocs/op
BenchmarkBroken-8	not-a-number	 100 ns/op
PASS
ok  	repro	12.345s
`

func TestParseCannedOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("header = %q/%q", rep.Goos, rep.Goarch)
	}
	if rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("parsed %d results, want 4 (broken line must be skipped): %+v", len(rep.Results), rep.Results)
	}
	// Results are sorted by name and the -8 cpu suffix is stripped.
	wantNames := []string{
		"BenchmarkE1MobileIPRegistration",
		"BenchmarkE6SchemeComparison",
		"BenchmarkScenarioPerScheme/multitier-rsmc",
		"BenchmarkSchedulerEventChurn",
	}
	for i, want := range wantNames {
		if rep.Results[i].Name != want {
			t.Fatalf("result %d name = %q, want %q", i, rep.Results[i].Name, want)
		}
	}
	e6 := rep.Results[1]
	if e6.Iterations != 3 || e6.NsPerOp != 736063066 || e6.BytesPerOp != 286013856 || e6.AllocsPerOp != 4522096 {
		t.Fatalf("E6 measurements wrong: %+v", e6)
	}
	// A line without -benchmem columns still parses ns/op.
	sub := rep.Results[2]
	if sub.NsPerOp != 223456789 || sub.BytesPerOp != 0 || sub.AllocsPerOp != 0 {
		t.Fatalf("sub-bench measurements wrong: %+v", sub)
	}
}

func TestParseEmittedJSONRoundTrips(t *testing.T) {
	rep, err := parse(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not round trip: %v\n%s", err, buf.String())
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip lost results: %d -> %d", len(rep.Results), len(back.Results))
	}
	// Omitted-zero fields: the alloc-free benchmark keeps explicit zeros
	// out of the document.
	if strings.Contains(buf.String(), `"bytes_per_op": 0`) {
		t.Fatalf("zero B/op not omitted:\n%s", buf.String())
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("empty input produced %d results", len(rep.Results))
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8",                   // too few fields
		"BenchmarkX-8 abc 100 ns/op",     // bad iteration count
		"BenchmarkX-8 3 garbage garbage", // no ns/op measurement
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

// writeBaseline marshals a baseline report to a temp file for compare().
func writeBaseline(t *testing.T, rep Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGateDetectsRegression(t *testing.T) {
	base := Report{CPU: "test-box", Results: []Result{
		{Name: "BenchmarkE6SchemeComparison", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkE9ScaleSweep", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkOther", NsPerOp: 1000},
	}}
	path := writeBaseline(t, base)
	gates := []string{"BenchmarkE6", "BenchmarkE9", "BenchmarkE10"}

	// Within the limit (+10% ns/op) and an ungated benchmark regressing
	// wildly: no failures.
	fresh := Report{CPU: "test-box", Results: []Result{
		{Name: "BenchmarkE6SchemeComparison", NsPerOp: 1100, AllocsPerOp: 100},
		{Name: "BenchmarkE9ScaleSweep", NsPerOp: 900, AllocsPerOp: 100},
		{Name: "BenchmarkOther", NsPerOp: 9000},
	}}
	var out strings.Builder
	n, err := compare(path, fresh, 0.15, gates, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("within-limit run failed gate (%d failures):\n%s", n, out.String())
	}

	// ns/op past the limit on one gated benchmark: exactly one failure.
	fresh.Results[0].NsPerOp = 1200
	out.Reset()
	if n, err = compare(path, fresh, 0.15, gates, &out); err != nil || n != 1 {
		t.Fatalf("ns/op regression: failures=%d err=%v\n%s", n, err, out.String())
	}

	// allocs/op regression alone also fails.
	fresh.Results[0].NsPerOp = 1000
	fresh.Results[0].AllocsPerOp = 200
	out.Reset()
	if n, err = compare(path, fresh, 0.15, gates, &out); err != nil || n != 1 {
		t.Fatalf("allocs regression: failures=%d err=%v\n%s", n, err, out.String())
	}
}

func TestCompareGateFailsOnMissingBenchmark(t *testing.T) {
	base := Report{Results: []Result{{Name: "BenchmarkE9ScaleSweep", NsPerOp: 1000}}}
	path := writeBaseline(t, base)
	var out strings.Builder
	n, err := compare(path, Report{}, 0.15, []string{"BenchmarkE9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("missing gated benchmark passed the gate:\n%s", out.String())
	}
}

func TestCompareGateSkipsNewBenchmarks(t *testing.T) {
	path := writeBaseline(t, Report{Results: []Result{{Name: "BenchmarkE9ScaleSweep", NsPerOp: 1000}}})
	fresh := Report{Results: []Result{
		{Name: "BenchmarkE9ScaleSweep", NsPerOp: 1000},
		{Name: "BenchmarkE9Scale10k", NsPerOp: 123456},
	}}
	var out strings.Builder
	n, err := compare(path, fresh, 0.15, []string{"BenchmarkE9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("new benchmark without baseline failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkE9Scale10k") {
		t.Fatalf("new benchmark not reported:\n%s", out.String())
	}
}

func TestCompareGateRejectsBadBaseline(t *testing.T) {
	if _, err := compare(filepath.Join(t.TempDir(), "missing.json"), Report{}, 0.15, nil, io.Discard); err == nil {
		t.Fatal("missing baseline accepted")
	}
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := compare(path, Report{}, 0.15, nil, io.Discard); err == nil {
		t.Fatal("garbage baseline accepted")
	}
}

// TestCompareGateMinMergesRepetitions pins the -count de-noising: a
// benchmark measured several times is judged by its fastest repetition
// (and smallest alloc count), so one noisy repetition cannot flag a
// phantom regression.
func TestCompareGateMinMergesRepetitions(t *testing.T) {
	path := writeBaseline(t, Report{CPU: "test-box", Results: []Result{
		{Name: "BenchmarkE9ScaleSweep", NsPerOp: 1000, AllocsPerOp: 100},
	}})
	fresh := Report{CPU: "test-box", Results: []Result{
		{Name: "BenchmarkE9ScaleSweep", NsPerOp: 1600, AllocsPerOp: 100}, // noisy rep
		{Name: "BenchmarkE9ScaleSweep", NsPerOp: 1050, AllocsPerOp: 101},
	}}
	var out strings.Builder
	n, err := compare(path, fresh, 0.15, []string{"BenchmarkE9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("min-merge failed to de-noise repetitions:\n%s", out.String())
	}
	// Every repetition slow: a real regression still fails.
	fresh.Results[1].NsPerOp = 1600
	out.Reset()
	if n, err = compare(path, fresh, 0.15, []string{"BenchmarkE9"}, &out); err != nil || n != 1 {
		t.Fatalf("uniform regression passed the gate: failures=%d err=%v\n%s", n, err, out.String())
	}
}

// TestCompareGateCPUMismatchMakesNsAdvisory pins the cross-machine rule:
// on foreign hardware ns/op cannot fail the gate (absolute times mean
// nothing there), while the machine-independent allocs/op check still
// can.
func TestCompareGateCPUMismatchMakesNsAdvisory(t *testing.T) {
	path := writeBaseline(t, Report{CPU: "recording-box", Results: []Result{
		{Name: "BenchmarkE9ScaleSweep", NsPerOp: 1000, AllocsPerOp: 100},
	}})
	fresh := Report{CPU: "other-box", Results: []Result{
		{Name: "BenchmarkE9ScaleSweep", NsPerOp: 5000, AllocsPerOp: 100},
	}}
	var out strings.Builder
	n, err := compare(path, fresh, 0.15, []string{"BenchmarkE9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("ns/op failed the gate on mismatched hardware:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "advisory") {
		t.Fatalf("mismatch not reported:\n%s", out.String())
	}
	fresh.Results[0].AllocsPerOp = 200
	out.Reset()
	if n, err = compare(path, fresh, 0.15, []string{"BenchmarkE9"}, &out); err != nil || n != 1 {
		t.Fatalf("allocs regression must still fail cross-machine: failures=%d err=%v\n%s", n, err, out.String())
	}
	// Unknown identity (missing cpu: line) is treated like a mismatch.
	fresh = Report{Results: []Result{
		{Name: "BenchmarkE9ScaleSweep", NsPerOp: 5000, AllocsPerOp: 100},
	}}
	out.Reset()
	if n, err = compare(path, fresh, 0.15, []string{"BenchmarkE9"}, &out); err != nil || n != 0 {
		t.Fatalf("ns/op failed the gate with unknown CPU identity: failures=%d err=%v\n%s", n, err, out.String())
	}
}

func TestStampRecordsToolchain(t *testing.T) {
	var rep Report
	rep.stamp()
	if !strings.HasPrefix(rep.GoVersion, "go") {
		t.Fatalf("go_version = %q, want a go toolchain version", rep.GoVersion)
	}
	// GitCommit is best-effort: when it is set (tests run inside the
	// repo) it must look like a short hash.
	if rep.GitCommit != "" && (len(rep.GitCommit) < 6 || strings.ContainsAny(rep.GitCommit, " \n")) {
		t.Fatalf("git_commit = %q, not a short hash", rep.GitCommit)
	}
}

// TestCompareToleratesProvenanceMetadata pins the interop contract:
// baselines carrying (or lacking) the go_version/git_commit provenance
// fields — and any future unknown metadata — compare cleanly against a
// fresh report either way.
func TestCompareToleratesProvenanceMetadata(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	raw := []byte(`{
  "cpu": "test-box",
  "go_version": "go99.99",
  "git_commit": "deadbeef",
  "some_future_field": {"nested": true},
  "results": [{"name": "BenchmarkE9ScaleSweep", "iterations": 1, "ns_per_op": 1000}]
}`)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := Report{CPU: "test-box", GoVersion: "go1.0", Results: []Result{
		{Name: "BenchmarkE9ScaleSweep", NsPerOp: 1000},
	}}
	fresh.stamp()
	var out strings.Builder
	n, err := compare(path, fresh, 0.15, []string{"BenchmarkE9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("metadata-bearing baseline failed the gate:\n%s", out.String())
	}
}
