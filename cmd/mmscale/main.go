// Command mmscale runs the population-scale experiments: the E9 scale
// sweep (heterogeneous fleet workloads swept across mobile-node
// populations and mobility-management schemes, reporting a per-profile
// QoE table) and, with -dimension, the E10 capacity×population matrix
// (every population run on the fixed seed topology and again on a
// demand-dimensioned arena, reporting reason-coded admission outcomes
// and per-tier occupancy alongside QoE). With -faults it runs the E11
// resilience matrix instead: deterministic fault plans (station outages,
// backbone degradation, regional radio fade) injected into every scheme,
// reporting handoff loss, session survival, signalling load and
// time-to-90%-re-registered recovery. With -closedloop it runs the E13
// closed-loop matrix: a hotspot crowd swept open-loop and again with
// the QoE feedback loop armed (elastic admission budget shifting plus
// survival-dip pre-paging), against each fault profile. With -degrade it
// runs the E14 degradation matrix: a three-class crowd swept over the
// cliff (no policy) and again with graceful degradation armed (the
// class-priority admission ladder, video rate adaptation, and the
// registration-storm breaker), against each fault profile.
//
// Scale runs are bounded-memory by construction: each scenario owns a
// private packet arena and per-profile metrics are streaming aggregates,
// so peak heap tracks the population and topology, never the packet
// count.
//
// Example:
//
//	mmscale                                     # E9: 500 → 10k MNs, every scheme
//	mmscale -mns 5000 -schemes multitier-rsmc   # one cell at scale
//	mmscale -mns 500,2000 -reps 3 -seed 42      # error bars
//	mmscale -fleet pedestrian-voice=80,vehicular-video=20
//	mmscale -signalling                         # per-profile location updates + pages
//	mmscale -dimension                          # E10: fixed vs dimensioned matrix
//	mmscale -dimension -density dense -headroom 1.5
//	mmscale -measureworkers 0                   # parallel measurement phase (0 = GOMAXPROCS)
//	mmscale -dimension -rootocc                 # per-root occupancy column (load balance)
//	mmscale -faults                             # E11: resilience matrix, all fault profiles
//	mmscale -faults -faultprofiles root-outage  # one fault profile
//	mmscale -faults -trace -sample 250ms -traceout traces/  # one JSONL trace per scenario
//	mmscale -closedloop                         # E13: open vs closed QoE feedback loop
//	mmscale -closedloop -trace -traceout traces/  # with alert traces (mmtrace -alerts)
//	mmscale -degrade                            # E14: cliff vs graceful degradation
//	mmscale -degrade -faultprofiles storm       # storm rows only
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/capacity"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mmscale:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	def := experiments.DefaultScaleSweep()
	fs := flag.NewFlagSet("mmscale", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "base seed")
		scale      = fs.Float64("scale", 1.0, "duration multiplier (e.g. 0.1 for quick runs)")
		reps       = fs.Int("reps", 1, "replications per cell (cells become mean±std)")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "scenario workers")
		measurew   = fs.Int("measureworkers", 1, "per-scenario measurement workers (0 = GOMAXPROCS); results are byte-identical for any count")
		mns        = fs.String("mns", joinInts(def.Populations), "comma-separated population axis")
		schemes    = fs.String("schemes", joinSchemes(def.Schemes), "comma-separated schemes to sweep")
		duration   = fs.Duration("duration", def.Duration, "virtual span of each scenario")
		fleetArg   = fs.String("fleet", def.Spec.String(), "population mix as name=share,... (built-in profiles)")
		signalling = fs.Bool("signalling", false, "add per-profile location-update and paging columns to the E9 sweep (E10 always includes them)")
		dimension  = fs.Bool("dimension", false, "run the E10 capacity matrix: fixed vs dimensioned topology")
		faultsRun  = fs.Bool("faults", false, "run the E11 resilience matrix: deterministic fault injection x scheme")
		closedloop = fs.Bool("closedloop", false, "run the E13 closed-loop matrix: open vs closed QoE feedback loop x fault profile")
		degradeRun = fs.Bool("degrade", false, "run the E14 degradation matrix: cliff vs graceful degradation x fault profile")
		faultprofs = fs.String("faultprofiles", "", "with -faults or -degrade, comma-separated fault profiles to inject (default: the mode's standard profiles)")
		rootocc    = fs.Bool("rootocc", false, "with -dimension, add the per-root occupancy load-balance column")
		density    = fs.String("density", string(capacity.DensityUrban), "dimensioning density preset (sparse|urban|dense)")
		headroom   = fs.Float64("headroom", capacity.DefaultHeadroom, "dimensioning capacity headroom factor (>= 1)")
		memstats   = fs.Bool("memstats", false, "print heap statistics after the sweep")
		trace      = fs.Bool("trace", false, "record a deterministic event trace of every scenario (replication 0)")
		sample     = fs.Duration("sample", 0, "with -trace, time-series sampling cadence (0 = events only)")
		traceout   = fs.String("traceout", "traces", "with -trace, directory receiving one JSONL trace per scenario")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sw := experiments.ScaleSweep{Duration: *duration, PerProfileSignalling: *signalling}
	var err error
	if sw.Populations, err = parseInts(*mns); err != nil {
		return fmt.Errorf("-mns: %w", err)
	}
	if sw.Schemes, err = parseSchemes(*schemes); err != nil {
		return fmt.Errorf("-schemes: %w", err)
	}
	if sw.Spec, err = fleet.ParseSpec(*fleetArg); err != nil {
		return fmt.Errorf("-fleet: %w", err)
	}
	mw := *measurew
	if mw == 0 {
		mw = runtime.GOMAXPROCS(0)
	}
	opt := experiments.Options{Seed: *seed, TimeScale: *scale, Reps: *reps, Parallel: *parallel,
		MeasureWorkers: mw}
	if *trace {
		opt.Obs = &obs.Config{SampleInterval: *sample, PacketSampleEvery: 64}
		opt.TraceDir = *traceout
	}
	if err := opt.Validate(); err != nil {
		return err
	}

	modes := 0
	for _, on := range []bool{*faultsRun, *dimension, *closedloop, *degradeRun} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-faults, -dimension, -closedloop and -degrade are mutually exclusive")
	}
	if *faultprofs != "" && !*faultsRun && !*degradeRun {
		return fmt.Errorf("-faultprofiles requires -faults or -degrade")
	}

	start := time.Now()
	var tbl *experiments.Table
	if *faultsRun {
		profiles, perr := parseFaultProfiles(*faultprofs)
		if perr != nil {
			return fmt.Errorf("-faultprofiles: %w", perr)
		}
		m := experiments.DefaultResilienceMatrix()
		m.Schemes = sw.Schemes
		m.Duration = sw.Duration
		m.Spec = sw.Spec
		m.Profiles = profiles
		// The resilience matrix has its own (smaller) default population
		// axis; an explicit -mns still overrides it.
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "mns" {
				m.Populations = sw.Populations
			}
		})
		tbl, err = experiments.E11Resilience(opt, m)
	} else if *closedloop {
		// The closed-loop matrix runs its own hotspot crowd against the
		// multi-tier scheme only; explicit axis flags still override.
		m := experiments.DefaultClosedLoopMatrix()
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "mns":
				m.Populations = sw.Populations
			case "duration":
				m.Duration = sw.Duration
			case "fleet":
				m.Spec = sw.Spec
			case "sample":
				m.SampleInterval = *sample
			}
		})
		tbl, err = experiments.E13ClosedLoop(opt, m)
	} else if *degradeRun {
		profiles, perr := parseFaultProfiles(*faultprofs)
		if perr != nil {
			return fmt.Errorf("-faultprofiles: %w", perr)
		}
		// The degradation matrix runs its own three-class crowd against
		// the multi-tier scheme only; explicit axis flags still override.
		m := experiments.DefaultDegradationMatrix()
		m.Profiles = profiles
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "mns":
				m.Populations = sw.Populations
			case "duration":
				m.Duration = sw.Duration
			case "fleet":
				m.Spec = sw.Spec
			case "sample":
				m.SampleInterval = *sample
			}
		})
		tbl, err = experiments.E14Degradation(opt, m)
	} else if *dimension {
		tbl, err = experiments.E10CapacityMatrix(opt, experiments.CapacityMatrix{
			Populations: sw.Populations,
			Schemes:     sw.Schemes,
			Duration:    sw.Duration,
			Spec:        sw.Spec,
			Planner: capacity.PlannerConfig{
				Density:  capacity.Density(*density),
				Headroom: *headroom,
			},
			PerRootOccupancy: *rootocc,
		})
	} else {
		tbl, err = experiments.E9ScaleSweep(opt, sw)
	}
	if err != nil {
		return err
	}
	fmt.Println(tbl)
	fmt.Fprintf(os.Stderr, "mmscale: %d population(s) x %d scheme(s), %d rep(s), %d worker(s), %d measure worker(s) in %v\n",
		len(sw.Populations), len(sw.Schemes), *reps, *parallel, mw, time.Since(start).Round(time.Millisecond))
	if *memstats {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		fmt.Fprintf(os.Stderr, "mmscale: heap-alloc=%dMiB heap-sys=%dMiB total-alloc=%dMiB gc=%d\n",
			m.HeapAlloc>>20, m.HeapSys>>20, m.TotalAlloc>>20, m.NumGC)
	}
	return nil
}

func joinInts(vals []int) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

// parseInts parses the population axis, enforcing the same rules
// experiments.ScaleSweep.Validate applies — strictly ascending positive
// counts — so a bad -mns fails here with a flag-shaped error instead of
// surfacing later as a sweep error (or, before validation existed,
// silently doubling runs and rendering misordered tables).
func parseInts(s string) ([]int, error) {
	var out []int
	prev := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad population %q", part)
		}
		switch {
		case v == prev:
			return nil, fmt.Errorf("duplicate population %d", v)
		case v < prev:
			return nil, fmt.Errorf("populations must be ascending (%d after %d)", v, prev)
		}
		prev = v
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no populations")
	}
	return out, nil
}

// parseFaultProfiles resolves a comma-separated profile-name list against
// the standard fault profiles; empty means all of them.
func parseFaultProfiles(s string) ([]faults.NamedPlan, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []faults.NamedPlan
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		np, err := faults.ProfileByName(part)
		if err != nil {
			return nil, err
		}
		out = append(out, np)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fault profiles")
	}
	return out, nil
}

func joinSchemes(schemes []core.Scheme) string {
	parts := make([]string, len(schemes))
	for i, s := range schemes {
		parts[i] = string(s)
	}
	return strings.Join(parts, ",")
}

func parseSchemes(s string) ([]core.Scheme, error) {
	known := make(map[core.Scheme]bool)
	for _, sc := range core.Schemes() {
		known[sc] = true
	}
	var out []core.Scheme
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sc := core.Scheme(part)
		if !known[sc] {
			return nil, fmt.Errorf("unknown scheme %q", part)
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no schemes")
	}
	return out, nil
}
