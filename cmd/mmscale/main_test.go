package main

import "testing"

func TestRunSmallSweep(t *testing.T) {
	if err := run([]string{"-mns", "20,40", "-schemes", "multitier-rsmc",
		"-duration", "3s", "-memstats"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRejectsBadPopulations(t *testing.T) {
	for _, mns := range []string{"", "0", "-5", "abc", "10,x",
		"10,10", "40,20", "10,20,20", "30,10,20"} {
		if err := run([]string{"-mns", mns}); err == nil {
			t.Fatalf("-mns %q accepted", mns)
		}
	}
}

func TestRunSmallDimensionedMatrix(t *testing.T) {
	if err := run([]string{"-dimension", "-mns", "20,40", "-schemes", "multitier-rsmc",
		"-duration", "3s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallSweepWithSignalling(t *testing.T) {
	if err := run([]string{"-mns", "20", "-schemes", "multitier-rsmc",
		"-duration", "3s", "-signalling"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadDimensioningKnobs(t *testing.T) {
	if err := run([]string{"-dimension", "-mns", "20", "-density", "downtown"}); err == nil {
		t.Fatal("unknown density accepted")
	}
	if err := run([]string{"-dimension", "-mns", "20", "-headroom", "0.5"}); err == nil {
		t.Fatal("sub-1 headroom accepted")
	}
}

func TestRunRejectsBadSchemes(t *testing.T) {
	for _, s := range []string{"", "warp-drive", "multitier-rsmc,nope"} {
		if err := run([]string{"-mns", "10", "-schemes", s}); err == nil {
			t.Fatalf("-schemes %q accepted", s)
		}
	}
}

func TestRunRejectsBadFleet(t *testing.T) {
	if err := run([]string{"-mns", "10", "-fleet", "unknown-profile=1"}); err == nil {
		t.Fatal("unknown fleet profile accepted")
	}
	if err := run([]string{"-mns", "10", "-fleet", "pedestrian-voice=0"}); err == nil {
		t.Fatal("zero-share fleet accepted")
	}
}

func TestRunRejectsDegenerateOptions(t *testing.T) {
	if err := run([]string{"-mns", "10", "-scale", "0"}); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := run([]string{"-mns", "10", "-reps", "0"}); err == nil {
		t.Fatal("zero reps accepted")
	}
}

func TestRunMeasureWorkers(t *testing.T) {
	// 0 resolves to GOMAXPROCS; any count renders identical bytes, so a
	// tiny sweep just has to complete.
	if err := run([]string{"-mns", "20", "-schemes", "multitier-rsmc",
		"-duration", "3s", "-measureworkers", "0"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-mns", "20", "-schemes", "multitier-rsmc",
		"-duration", "3s", "-measureworkers", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-mns", "20", "-measureworkers", "-2"}); err == nil {
		t.Fatal("negative -measureworkers accepted")
	}
}

func TestRunSmallClosedLoopMatrix(t *testing.T) {
	// A small crowd never trips the occupancy alert, but the full
	// open/closed x profile matrix must still run and render.
	if err := run([]string{"-closedloop", "-mns", "100", "-duration", "2s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsConflictingModes(t *testing.T) {
	for _, args := range [][]string{
		{"-closedloop", "-faults"},
		{"-closedloop", "-dimension"},
		{"-faults", "-dimension"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("run(%v) accepted", args)
		}
	}
}
