package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// goldenTrace is the pinned trace the experiments package commits; the
// tool's tests ride the same artifact so they exercise real span and
// series shapes without running a simulation.
const goldenTrace = "../../internal/experiments/testdata/golden_trace.jsonl"

func TestSummaryOnGoldenTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{goldenTrace}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"scheme=multitier-rsmc",
		"event counts:",
		"handoff.trigger",
		"span latencies:",
		"handoff -> first data",
		"fault recovery (t90)",
		"recovery curve (session.registered_frac):",
		"series:",
		"sched.heap_depth",
		"mip.auth.cpu_ns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q\n%s", want, out)
		}
	}
}

func TestTimelineOnGoldenTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-timeline", goldenTrace}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "timeline (handoff + fault events):") {
		t.Fatalf("no timeline section:\n%s", out)
	}
	if !strings.Contains(out, "fault.station_down") || !strings.Contains(out, "fault.station_up") {
		t.Errorf("timeline missing the fault window:\n%s", out)
	}
}

func TestDiffSelfIsNeutral(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-diff", goldenTrace, goldenTrace}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "(+0)") {
		t.Errorf("self-diff should show zero deltas:\n%s", out)
	}
	// No count may move when a trace is diffed against itself.
	if strings.Contains(out, "*") {
		t.Errorf("self-diff flagged a changed count:\n%s", out)
	}
}

func TestChromeConversionIsValidJSON(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "trace.json")
	var buf bytes.Buffer
	if err := run([]string{"-chrome", outPath, goldenTrace}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal(raw, &records); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v", err)
	}
	if len(records) == 0 {
		t.Fatal("chrome output is empty")
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	cases := [][]string{
		{},                                  // no file
		{"a.jsonl", "b.jsonl"},              // two files without -diff
		{"-diff", goldenTrace},              // -diff with one file
		{filepath.Join(t.TempDir(), "x.j")}, // missing file
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	vals := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 5}, {0.90, 9}, {0.99, 10}, {1.0, 10},
	}
	for _, c := range cases {
		if got := percentile(vals, c.q); got != c.want {
			t.Errorf("percentile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}

func TestSpansReadValField(t *testing.T) {
	tr := obs.New(obs.Config{Capacity: 8})
	tr.Emit(1, obs.KindHandoffCommit, 0, 1, 0, int64(5*time.Millisecond))
	tr.Emit(2, obs.KindHandoffCommit, 1, 2, 0, int64(7*time.Millisecond))
	tr.Emit(3, obs.KindRegAccept, 0, -1, 0, int64(time.Millisecond))
	got := spans(tr, obs.KindHandoffCommit)
	if len(got) != 2 || got[0] != 5*time.Millisecond || got[1] != 7*time.Millisecond {
		t.Errorf("spans = %v", got)
	}
}
