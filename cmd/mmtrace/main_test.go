package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// goldenTrace is the pinned trace the experiments package commits; the
// tool's tests ride the same artifact so they exercise real span and
// series shapes without running a simulation.
const goldenTrace = "../../internal/experiments/testdata/golden_trace.jsonl"

func TestSummaryOnGoldenTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{goldenTrace}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"scheme=multitier-rsmc",
		"event counts:",
		"handoff.trigger",
		"span latencies:",
		"handoff -> first data",
		"fault recovery (t90)",
		"recovery curve (session.registered_frac):",
		"degradation:",
		"(no degrade.* events: degradation not armed, or the trace predates it)",
		"series:",
		"sched.heap_depth",
		"mip.auth.cpu_ns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q\n%s", want, out)
		}
	}
}

func TestTimelineOnGoldenTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-timeline", goldenTrace}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "timeline (handoff + fault events):") {
		t.Fatalf("no timeline section:\n%s", out)
	}
	if !strings.Contains(out, "fault.station_down") || !strings.Contains(out, "fault.station_up") {
		t.Errorf("timeline missing the fault window:\n%s", out)
	}
}

func TestDiffSelfIsNeutral(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-diff", goldenTrace, goldenTrace}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "(+0)") {
		t.Errorf("self-diff should show zero deltas:\n%s", out)
	}
	if !strings.Contains(out, "degradation (A -> B):") ||
		!strings.Contains(out, "(neither trace carries degradation events)") {
		t.Errorf("diff missing the explicit empty degradation section:\n%s", out)
	}
	// No count may move when a trace is diffed against itself.
	if strings.Contains(out, "*") {
		t.Errorf("self-diff flagged a changed count:\n%s", out)
	}
}

func TestChromeConversionIsValidJSON(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "trace.json")
	var buf bytes.Buffer
	if err := run([]string{"-chrome", outPath, goldenTrace}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal(raw, &records); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v", err)
	}
	if len(records) == 0 {
		t.Fatal("chrome output is empty")
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	cases := [][]string{
		{},                                  // no file
		{"a.jsonl", "b.jsonl"},              // two files without -diff
		{"-diff", goldenTrace},              // -diff with one file
		{filepath.Join(t.TempDir(), "x.j")}, // missing file
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	vals := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 5}, {0.90, 9}, {0.99, 10}, {1.0, 10},
	}
	for _, c := range cases {
		if got := percentile(vals, c.q); got != c.want {
			t.Errorf("percentile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}

func TestSpansReadValField(t *testing.T) {
	tr := obs.New(obs.Config{Capacity: 8})
	tr.Emit(1, obs.KindHandoffCommit, 0, 1, 0, int64(5*time.Millisecond))
	tr.Emit(2, obs.KindHandoffCommit, 1, 2, 0, int64(7*time.Millisecond))
	tr.Emit(3, obs.KindRegAccept, 0, -1, 0, int64(time.Millisecond))
	got := spans(tr, obs.KindHandoffCommit)
	if len(got) != 2 || got[0] != 5*time.Millisecond || got[1] != 7*time.Millisecond {
		t.Errorf("spans = %v", got)
	}
}

// alertTrace builds a trace with two monitor rules: "hot" raises twice
// (once cleared, once left open at the end) and "quiet" never fires.
func alertTrace(t *testing.T) string {
	t.Helper()
	tr := obs.New(obs.Config{Capacity: 64})
	m := obs.NewMonitor(tr)
	for _, r := range []obs.Rule{
		{Name: "hot", Series: "g", Threshold: 0.5, Hysteresis: 0.1},
		{Name: "quiet", Series: "g", Threshold: 99},
	} {
		if err := m.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	feed := func(at time.Duration, v float64) {
		tr.SeriesByName("g").Observe(at, v)
		m.Eval(at)
	}
	feed(1*time.Second, 0.2)
	feed(2*time.Second, 0.9) // raise
	feed(3*time.Second, 0.3) // clear
	feed(4*time.Second, 0.9) // raise again, never cleared
	path := filepath.Join(t.TempDir(), "alerts.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAlertTimeline(t *testing.T) {
	path := alertTrace(t)
	var buf bytes.Buffer
	if err := run([]string{"-alerts", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"alerts: 2 raised, 1 cleared across 2 rules",
		"alert timeline:",
		"hot",
		"cleared after 1s",
		"still active at end of trace",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("alert view missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "quiet") {
		t.Errorf("rule that never fired appears in the timeline:\n%s", out)
	}
}

// TestAlertTimelineOnPreMonitorTrace pins graceful degradation: traces
// written before monitors existed declare no rules, and the section
// says so instead of erroring or vanishing.
func TestAlertTimelineOnPreMonitorTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-alerts", goldenTrace}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "(trace declares no monitor rules)") {
		t.Errorf("pre-monitor trace did not render the empty alert section:\n%s", buf.String())
	}
}

func TestDiffReportsAlertCounts(t *testing.T) {
	path := alertTrace(t)
	var buf bytes.Buffer
	if err := run([]string{"-diff", path, path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "alerts: raised 2 -> 2 (+0), cleared 1 -> 1 (+0)") {
		t.Errorf("diff missing alert counts:\n%s", buf.String())
	}
}

// TestSummaryWarnsOnDroppedEvents pins the Dropped>0 surfacing: a trace
// that overflowed its buffer must say so up front.
func TestSummaryWarnsOnDroppedEvents(t *testing.T) {
	tr := obs.New(obs.Config{Capacity: 1})
	tr.Emit(1, obs.KindRegAttempt, 0, -1, 0, 0)
	tr.Emit(2, obs.KindRegAttempt, 1, -1, 0, 0)
	path := filepath.Join(t.TempDir(), "dropped.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "WARNING: 1 events dropped at capacity") {
		t.Errorf("summary missing the dropped-events warning:\n%s", buf.String())
	}
}
