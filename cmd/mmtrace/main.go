// Command mmtrace summarises and compares deterministic simulation
// traces (the JSONL files cmd/mmsim -trace and cmd/mmscale -trace
// write). The summary reports event counts, span latency percentiles
// (registration accept, handoff commit, handoff-to-first-data, fault
// recovery), the injected fault windows, the session-survival recovery
// curve and every sampled time series. With -diff it aligns two traces
// and reports what moved; with -chrome it converts a trace to the
// Chrome trace-event format (load via chrome://tracing or Perfetto).
//
// Example:
//
//	mmtrace run.jsonl
//	mmtrace -timeline run.jsonl             # chronological handoff/fault timeline
//	mmtrace -diff before.jsonl after.jsonl
//	mmtrace -chrome out.json run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmtrace", flag.ContinueOnError)
	var (
		diff     = fs.Bool("diff", false, "compare two traces: mmtrace -diff a.jsonl b.jsonl")
		chrome   = fs.String("chrome", "", "convert the trace to Chrome trace-event JSON at this path")
		timeline = fs.Bool("timeline", false, "print the chronological handoff and fault timeline")
		alerts   = fs.Bool("alerts", false, "print the per-rule alert raise/clear timeline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	switch {
	case *diff:
		if len(paths) != 2 {
			return fmt.Errorf("-diff needs exactly two trace files, got %d", len(paths))
		}
		a, err := load(paths[0])
		if err != nil {
			return err
		}
		b, err := load(paths[1])
		if err != nil {
			return err
		}
		printDiff(out, paths[0], paths[1], a, b)
		return nil
	case len(paths) != 1:
		return fmt.Errorf("need exactly one trace file, got %d", len(paths))
	}
	tr, err := load(paths[0])
	if err != nil {
		return err
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		werr := tr.WriteChrome(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(out, "wrote %s (%d events, %d series)\n", *chrome, len(tr.Events()), len(tr.AllSeries()))
		return nil
	}
	printSummary(out, tr)
	if *timeline {
		printTimeline(out, tr)
	}
	if *alerts {
		printAlerts(out, tr)
	}
	return nil
}

func load(path string) (*obs.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := obs.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// spanFamilies maps the event kinds whose Val field carries a span
// duration in nanoseconds to a display label. Percentiles are computed
// straight from these values: the emitting site already measured the
// span against virtual time.
var spanFamilies = []struct {
	kind  obs.Kind
	label string
}{
	{obs.KindRegAccept, "registration latency"},
	{obs.KindHandoffCommit, "handoff commit latency"},
	{obs.KindHandoffFirstData, "handoff -> first data"},
	{obs.KindRecoveryT90, "fault recovery (t90)"},
}

// spans collects the span durations of one family, in emission order.
func spans(tr *obs.Trace, kind obs.Kind) []time.Duration {
	var out []time.Duration
	for _, e := range tr.Events() {
		if e.Kind == kind {
			out = append(out, time.Duration(e.Val))
		}
	}
	return out
}

// percentile returns the q-quantile of vals by the nearest-rank method
// (deterministic, no interpolation). vals must be sorted ascending.
func percentile(vals []time.Duration, q float64) time.Duration {
	if len(vals) == 0 {
		return 0
	}
	idx := int(q*float64(len(vals))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

func printSummary(out io.Writer, tr *obs.Trace) {
	m := tr.Meta
	fmt.Fprintf(out, "trace: scheme=%s seed=%d mns=%d duration=%v\n", m.Scheme, m.Seed, m.MNs, m.Duration)
	fmt.Fprintf(out, "  %d events (%d dropped), %d sampling rounds, %d series\n",
		len(tr.Events()), tr.Dropped(), tr.Samples(), len(tr.AllSeries()))
	if d := tr.Dropped(); d > 0 {
		fmt.Fprintf(out, "  WARNING: %d events dropped at capacity; counts and spans below are incomplete\n", d)
	}

	counts := make(map[obs.Kind]int)
	for _, e := range tr.Events() {
		counts[e.Kind]++
	}
	if r, c := counts[obs.KindAlertRaise], counts[obs.KindAlertClear]; r > 0 || c > 0 || len(tr.RuleNames()) > 0 {
		fmt.Fprintf(out, "  alerts: %d raised, %d cleared across %d rules (-alerts prints the timeline)\n",
			r, c, len(tr.RuleNames()))
	}
	fmt.Fprintln(out, "\nevent counts:")
	for _, k := range obs.Kinds() {
		if counts[k] > 0 {
			fmt.Fprintf(out, "  %-20s %d\n", k, counts[k])
		}
	}

	if n, a := counts[obs.KindRegRetry], counts[obs.KindRegAttempt]; a > 0 {
		fmt.Fprintf(out, "\nregistration: %d attempts, %d retries (%.2f per attempt), %d exhausted, %d expired\n",
			a, n, float64(n)/float64(a), counts[obs.KindRegExhausted], counts[obs.KindRegExpire])
	}

	fmt.Fprintln(out, "\nspan latencies:")
	for _, fam := range spanFamilies {
		vals := spans(tr, fam.kind)
		if len(vals) == 0 {
			continue
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		fmt.Fprintf(out, "  %-22s n=%-5d p50=%-10v p90=%-10v p99=%-10v max=%v\n",
			fam.label, len(vals),
			percentile(vals, 0.50), percentile(vals, 0.90),
			percentile(vals, 0.99), vals[len(vals)-1])
	}

	printRecovery(out, tr)
	printDegrade(out, tr, counts)

	if series := tr.AllSeries(); len(series) > 0 {
		fmt.Fprintln(out, "\nseries:")
		for _, s := range series {
			if len(s.Val) == 0 {
				fmt.Fprintf(out, "  %-26s (no samples)\n", s.Name)
				continue
			}
			min, max, sum := s.Val[0], s.Val[0], 0.0
			for _, v := range s.Val {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
				sum += v
			}
			fmt.Fprintf(out, "  %-26s n=%-4d min=%-12.4g mean=%-12.4g max=%-12.4g last=%.4g\n",
				s.Name, len(s.Val), min, sum/float64(len(s.Val)), max, s.Val[len(s.Val)-1])
		}
	}
}

// printRecovery renders the session-survival recovery curve: the
// registered fraction's dip under each fault window and when it came
// back. Only changes print, so a flat curve stays one line.
func printRecovery(out io.Writer, tr *obs.Trace) {
	s := findSeries(tr, "session.registered_frac")
	if s == nil || len(s.Val) == 0 {
		return
	}
	fmt.Fprintln(out, "\nrecovery curve (session.registered_frac):")
	prev := s.Val[0]
	fmt.Fprintf(out, "  %-10v %.4f\n", s.At[0], prev)
	for i := 1; i < len(s.Val); i++ {
		if s.Val[i] != prev {
			prev = s.Val[i]
			fmt.Fprintf(out, "  %-10v %.4f\n", s.At[i], prev)
		}
	}
}

// degradeKinds are the graceful-degradation event kinds in declaration
// order, shared between the summary and diff renderings.
var degradeKinds = []obs.Kind{
	obs.KindDegradePreempt, obs.KindDegradeVideoStepDown, obs.KindDegradeVideoStepUp,
	obs.KindDegradeDefer, obs.KindBreakerOpen, obs.KindBreakerHalfOpen, obs.KindBreakerClose,
}

// printDegrade renders the graceful-degradation section: video ladder
// step counts, admission deferrals/preemptions, and the registration
// breaker's open/half-open/close timeline. Traces recorded before the
// degradation layer existed (or with Degrade unarmed) carry none of
// these events; the section says so explicitly instead of vanishing.
func printDegrade(out io.Writer, tr *obs.Trace, counts map[obs.Kind]int) {
	fmt.Fprintln(out, "\ndegradation:")
	total := 0
	for _, k := range degradeKinds {
		total += counts[k]
	}
	if total == 0 {
		fmt.Fprintln(out, "  (no degrade.* events: degradation not armed, or the trace predates it)")
		return
	}
	fmt.Fprintf(out, "  video: %d stepdowns, %d stepups\n",
		counts[obs.KindDegradeVideoStepDown], counts[obs.KindDegradeVideoStepUp])
	var flushed int64
	for _, e := range tr.Events() {
		if e.Kind == obs.KindDegradePreempt {
			flushed += e.Val
		}
	}
	fmt.Fprintf(out, "  admission: %d deferred, %d preempted (%d buffered packets flushed)\n",
		counts[obs.KindDegradeDefer], counts[obs.KindDegradePreempt], flushed)
	opens := counts[obs.KindBreakerOpen] + counts[obs.KindBreakerHalfOpen] + counts[obs.KindBreakerClose]
	if opens == 0 {
		fmt.Fprintln(out, "  breaker: never opened")
		return
	}
	fmt.Fprintln(out, "  breaker timeline:")
	for _, e := range tr.Events() {
		switch e.Kind {
		case obs.KindBreakerOpen:
			fmt.Fprintf(out, "    %-12v open       (queued=%d)\n", e.At, e.Val)
		case obs.KindBreakerHalfOpen:
			fmt.Fprintf(out, "    %-12v half-open  (queue drained)\n", e.At)
		case obs.KindBreakerClose:
			fmt.Fprintf(out, "    %-12v closed     (recovery probe conformed)\n", e.At)
		}
	}
}

func findSeries(tr *obs.Trace, name string) *obs.Series {
	for _, s := range tr.AllSeries() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// printTimeline renders handoff and fault events chronologically (they
// are already stored in emission = virtual-time order).
func printTimeline(out io.Writer, tr *obs.Trace) {
	fmt.Fprintln(out, "\ntimeline (handoff + fault events):")
	for _, e := range tr.Events() {
		switch e.Kind {
		case obs.KindHandoffTrigger, obs.KindHandoffRequest, obs.KindHandoffDetach,
			obs.KindHandoffCommit, obs.KindHandoffFirstData, obs.KindRouteUpdate,
			obs.KindFaultStationDown, obs.KindFaultStationUp,
			obs.KindFaultLinkDegrade, obs.KindFaultLinkRestore,
			obs.KindFaultFadeStart, obs.KindFaultFadeEnd, obs.KindRecoveryT90:
			fmt.Fprintf(out, "  %-12v %-20s actor=%-4d cell=%-4d aux=%-4d val=%d\n",
				e.At, e.Kind, e.Actor, e.Cell, e.Aux, e.Val)
		}
	}
}

// alertVal renders the ppm fixed-point value carried in alert events'
// Val field back as the float the rule compared against its threshold.
func alertVal(ppm int64) string {
	return fmt.Sprintf("%.4f", float64(ppm)/1e6)
}

// printAlerts renders the per-rule alert timeline: every raise paired
// with its clear (rules are identified by the Aux index the monitor
// stamps on both events), alerts still active at the end of the run
// annotated as open. Traces written before monitors existed carry no
// rule declarations; the section says so instead of printing nothing.
func printAlerts(out io.Writer, tr *obs.Trace) {
	fmt.Fprintln(out, "\nalert timeline:")
	names := tr.RuleNames()
	if len(names) == 0 {
		fmt.Fprintln(out, "  (trace declares no monitor rules)")
		return
	}
	type openAlert struct {
		at  time.Duration
		val int64
	}
	open := make(map[int32]openAlert, len(names))
	fired := false
	for _, e := range tr.Events() {
		switch e.Kind {
		case obs.KindAlertRaise:
			open[e.Aux] = openAlert{e.At, e.Val}
		case obs.KindAlertClear:
			o, ok := open[e.Aux]
			if !ok {
				continue
			}
			delete(open, e.Aux)
			fired = true
			fmt.Fprintf(out, "  %-12v %-24s raised at %s, cleared after %v at %s\n",
				o.at, tr.RuleName(e.Aux), alertVal(o.val), e.At-o.at, alertVal(e.Val))
		}
	}
	// Alerts never cleared: report in rule-declaration order so the
	// rendering stays deterministic regardless of map iteration.
	for aux := range names {
		if o, ok := open[int32(aux)]; ok {
			fired = true
			fmt.Fprintf(out, "  %-12v %-24s raised at %s, still active at end of trace\n",
				o.at, tr.RuleName(int32(aux)), alertVal(o.val))
		}
	}
	if !fired {
		fmt.Fprintf(out, "  (no alerts fired across %d rules)\n", len(names))
	}
}

// printDiff aligns two traces and reports event-count deltas, span
// percentile shifts and series mean shifts.
func printDiff(out io.Writer, pathA, pathB string, a, b *obs.Trace) {
	fmt.Fprintf(out, "diff: A=%s (scheme=%s seed=%d)  B=%s (scheme=%s seed=%d)\n",
		pathA, a.Meta.Scheme, a.Meta.Seed, pathB, b.Meta.Scheme, b.Meta.Seed)
	fmt.Fprintf(out, "  events: A=%d B=%d (%+d)   samples: A=%d B=%d\n",
		len(a.Events()), len(b.Events()), len(b.Events())-len(a.Events()),
		a.Samples(), b.Samples())

	ca, cb := make(map[obs.Kind]int), make(map[obs.Kind]int)
	for _, e := range a.Events() {
		ca[e.Kind]++
	}
	for _, e := range b.Events() {
		cb[e.Kind]++
	}
	fmt.Fprintln(out, "\nevent counts (A -> B):")
	for _, k := range obs.Kinds() {
		if ca[k] == 0 && cb[k] == 0 {
			continue
		}
		marker := ""
		if ca[k] != cb[k] {
			marker = "  *"
		}
		fmt.Fprintf(out, "  %-20s %6d -> %-6d (%+d)%s\n", k, ca[k], cb[k], cb[k]-ca[k], marker)
	}
	if ca[obs.KindAlertRaise]+cb[obs.KindAlertRaise]+ca[obs.KindAlertClear]+cb[obs.KindAlertClear] > 0 {
		fmt.Fprintf(out, "\nalerts: raised %d -> %d (%+d), cleared %d -> %d (%+d)\n",
			ca[obs.KindAlertRaise], cb[obs.KindAlertRaise], cb[obs.KindAlertRaise]-ca[obs.KindAlertRaise],
			ca[obs.KindAlertClear], cb[obs.KindAlertClear], cb[obs.KindAlertClear]-ca[obs.KindAlertClear])
	}

	fmt.Fprintln(out, "\ndegradation (A -> B):")
	degTotal := 0
	for _, k := range degradeKinds {
		degTotal += ca[k] + cb[k]
	}
	if degTotal == 0 {
		fmt.Fprintln(out, "  (neither trace carries degradation events)")
	} else {
		fmt.Fprintf(out, "  stepdowns %d -> %d (%+d), stepups %d -> %d (%+d)\n",
			ca[obs.KindDegradeVideoStepDown], cb[obs.KindDegradeVideoStepDown],
			cb[obs.KindDegradeVideoStepDown]-ca[obs.KindDegradeVideoStepDown],
			ca[obs.KindDegradeVideoStepUp], cb[obs.KindDegradeVideoStepUp],
			cb[obs.KindDegradeVideoStepUp]-ca[obs.KindDegradeVideoStepUp])
		fmt.Fprintf(out, "  deferred %d -> %d (%+d), preempted %d -> %d (%+d)\n",
			ca[obs.KindDegradeDefer], cb[obs.KindDegradeDefer],
			cb[obs.KindDegradeDefer]-ca[obs.KindDegradeDefer],
			ca[obs.KindDegradePreempt], cb[obs.KindDegradePreempt],
			cb[obs.KindDegradePreempt]-ca[obs.KindDegradePreempt])
		fmt.Fprintf(out, "  breaker opens %d -> %d (%+d), closes %d -> %d (%+d)\n",
			ca[obs.KindBreakerOpen], cb[obs.KindBreakerOpen],
			cb[obs.KindBreakerOpen]-ca[obs.KindBreakerOpen],
			ca[obs.KindBreakerClose], cb[obs.KindBreakerClose],
			cb[obs.KindBreakerClose]-ca[obs.KindBreakerClose])
	}

	fmt.Fprintln(out, "\nspan latencies (A -> B):")
	for _, fam := range spanFamilies {
		va, vb := spans(a, fam.kind), spans(b, fam.kind)
		if len(va) == 0 && len(vb) == 0 {
			continue
		}
		sort.Slice(va, func(i, j int) bool { return va[i] < va[j] })
		sort.Slice(vb, func(i, j int) bool { return vb[i] < vb[j] })
		fmt.Fprintf(out, "  %-22s p50 %v -> %v   p99 %v -> %v\n",
			fam.label,
			percentile(va, 0.50), percentile(vb, 0.50),
			percentile(va, 0.99), percentile(vb, 0.99))
	}

	fmt.Fprintln(out, "\nseries means (A -> B):")
	seen := make(map[string]bool)
	for _, s := range append(append([]*obs.Series{}, a.AllSeries()...), b.AllSeries()...) {
		if seen[s.Name] {
			continue
		}
		seen[s.Name] = true
		ma, oka := seriesMean(findSeries(a, s.Name))
		mb, okb := seriesMean(findSeries(b, s.Name))
		switch {
		case oka && okb:
			fmt.Fprintf(out, "  %-26s %.4g -> %.4g\n", s.Name, ma, mb)
		case oka:
			fmt.Fprintf(out, "  %-26s %.4g -> (absent)\n", s.Name, ma)
		case okb:
			fmt.Fprintf(out, "  %-26s (absent) -> %.4g\n", s.Name, mb)
		}
	}
}

func seriesMean(s *obs.Series) (float64, bool) {
	if s == nil || len(s.Val) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, v := range s.Val {
		sum += v
	}
	return sum / float64(len(s.Val)), true
}
