// Command mmsim runs one mobility-management scenario and prints its
// metrics. It is the single-run counterpart to cmd/mmbench. With
// -reps > 1 the scenario is replicated with runner-derived seeds across
// -parallel workers and per-replication plus aggregate statistics are
// printed.
//
// Example:
//
//	mmsim -scheme multitier-rsmc -mns 8 -speed 15 -duration 2m -video
//	mmsim -reps 8 -parallel 4 -seed 42
//	mmsim -mns 500 -fleet pedestrian-voice=60,vehicular-video=25,stationary-data=15
//	mmsim -trace -sample 500ms -traceout run.jsonl   # deterministic trace + time series
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mmsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mmsim", flag.ContinueOnError)
	var (
		scheme    = fs.String("scheme", string(core.SchemeMultiTier), "mobile-ip | cellular-ip-hard | cellular-ip-semisoft | multitier-rsmc")
		seed      = fs.Int64("seed", 1, "simulation seed")
		duration  = fs.Duration("duration", time.Minute, "virtual duration")
		mns       = fs.Int("mns", 8, "mobile node population")
		speed     = fs.Float64("speed", 10, "node speed in m/s")
		mob       = fs.String("mobility", string(core.MobilityShuttle), "waypoint | shuttle | shuttle-domains | manhattan | static")
		voice     = fs.Bool("voice", true, "downlink voice flow per MN")
		video     = fs.Bool("video", false, "downlink video flow per MN")
		dataIvl   = fs.Duration("data-interval", 0, "poisson data mean gap (0 = off)")
		roots     = fs.Int("roots", 1, "upper-layer base stations")
		noSwitch  = fs.Bool("no-resource-switching", false, "disable RSMC packet buffering")
		authOn    = fs.Bool("auth", false, "enable RSMC authentication")
		shadowing = fs.Bool("shadowing", false, "log-normal shadowing on measurements")
		full      = fs.Bool("metrics", false, "print the full metric registry")
		reps      = fs.Int("reps", 1, "replications of the scenario (runner-derived seeds)")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "replication workers")
		fleetArg  = fs.String("fleet", "", "heterogeneous population mix as name=share,... (overrides -mobility/-speed/-voice/-video/-data-interval)")
		arena     = fs.Bool("arena", false, "per-scenario packet arena instead of the global pool (scale runs)")
		trace     = fs.Bool("trace", false, "record a deterministic event trace of the run")
		sample    = fs.Duration("sample", 0, "with -trace, time-series sampling cadence (0 = events only)")
		traceout  = fs.String("traceout", "trace.jsonl", "with -trace, JSONL trace output path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("reps %d: must be >= 1", *reps)
	}
	if *parallel < 1 {
		return fmt.Errorf("parallel %d: must be >= 1", *parallel)
	}

	topCfg := topology.DefaultConfig()
	topCfg.Roots = *roots
	cfg := core.Config{
		Seed:              *seed,
		Duration:          *duration,
		Scheme:            core.Scheme(*scheme),
		Topology:          topCfg,
		NumMNs:            *mns,
		Mobility:          core.MobilityKind(*mob),
		SpeedMPS:          *speed,
		Traffic:           core.TrafficConfig{Voice: *voice, Video: *video, DataMeanInterval: *dataIvl},
		MeasureInterval:   100 * time.Millisecond,
		ResourceSwitching: !*noSwitch,
		GuardChannels:     -1,
		AuthEnabled:       *authOn,
		Shadowing:         *shadowing,
		PacketArena:       *arena,
	}
	if *fleetArg != "" {
		spec, err := fleet.ParseSpec(*fleetArg)
		if err != nil {
			return err
		}
		cfg.Fleet = &spec
	}
	if *trace {
		cfg.Obs = &obs.Config{
			SampleInterval:    *sample,
			PacketSampleEvery: defaultPacketSampleEvery,
		}
	}
	if *reps > 1 {
		return runReplicated(cfg, *reps, *parallel, *full, *traceout)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("scheme=%s mns=%d speed=%.1fm/s duration=%v seed=%d\n",
		cfg.Scheme, cfg.NumMNs, cfg.SpeedMPS, cfg.Duration, cfg.Seed)
	fmt.Println(res.Summary)
	if *full {
		fmt.Println()
		fmt.Print(res.Registry.Render())
	}
	return writeTrace(res, *traceout)
}

// defaultPacketSampleEvery traces every Nth generated data packet's
// lifecycle: dense enough to reconstruct loss windows, sparse enough
// that packet events do not dominate the trace.
const defaultPacketSampleEvery = 64

// writeTrace exports a traced run to path and reports the trace shape
// (plus the measured measure/decide wall-clock split, which lives only
// on stderr — it is host-dependent and excluded from the trace bytes).
func writeTrace(res *core.Result, path string) error {
	tr := res.Trace
	if tr == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tr.WriteJSONL(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	fmt.Fprintf(os.Stderr, "mmsim: trace %s: %d events (%d dropped), %d samples, measure=%v decide=%v\n",
		path, len(tr.Events()), tr.Dropped(), tr.Samples(),
		time.Duration(tr.Wall.MeasureNS).Round(time.Microsecond),
		time.Duration(tr.Wall.DecideNS).Round(time.Microsecond))
	return nil
}

// runReplicated executes the scenario reps times through the worker pool
// (the configured seed becomes the runner's base seed) and prints each
// replication plus the aggregate.
func runReplicated(cfg core.Config, reps, parallel int, full bool, traceout string) error {
	base := cfg.Seed
	// Paired so replication 0 runs on the base seed itself: -reps N
	// always contains the plain -seed run and adds error bars to it.
	res, err := runner.Run(
		[]runner.Job{{Label: string(cfg.Scheme), Config: cfg}},
		runner.Options{BaseSeed: base, Reps: reps, Parallel: parallel, Paired: true})
	if err != nil {
		return err
	}
	r := res[0]
	fmt.Printf("scheme=%s mns=%d speed=%.1fm/s duration=%v base-seed=%d reps=%d\n",
		cfg.Scheme, cfg.NumMNs, cfg.SpeedMPS, cfg.Duration, base, reps)
	for i, run := range r.Runs {
		fmt.Printf("rep %d seed=%d: %s\n", i, r.Seeds[i], run.Summary)
	}
	printStat := func(name, unit string, s runner.Stat) {
		fmt.Printf("  %-14s mean=%.4f%s std=%.4f%s min=%.4f%s max=%.4f%s\n",
			name, s.Mean, unit, s.Std, unit, s.Min, unit, s.Max, unit)
	}
	fmt.Println("aggregate:")
	printStat("loss", "", r.LossRate())
	printStat("mean latency", "s", r.MeanLatency())
	printStat("p95 latency", "s", r.P95Latency())
	printStat("handoffs", "", r.Handoffs())
	printStat("signal msgs", "", r.SignalingMsgs())
	printStat("signal bytes", "B", r.SignalingBytes())
	if full {
		fmt.Printf("\nmetrics (rep 0, seed %d):\n", r.Seeds[0])
		fmt.Print(r.Runs[0].Registry.Render())
	}
	// Replicated traced runs export replication 0 (the base-seed run).
	if first := r.First(); first != nil {
		return writeTrace(first, traceout)
	}
	return nil
}
