// Command mmsim runs one mobility-management scenario and prints its
// metrics. It is the single-run counterpart to cmd/mmbench.
//
// Example:
//
//	mmsim -scheme multitier-rsmc -mns 8 -speed 15 -duration 2m -video
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mmsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mmsim", flag.ContinueOnError)
	var (
		scheme    = fs.String("scheme", string(core.SchemeMultiTier), "mobile-ip | cellular-ip-hard | cellular-ip-semisoft | multitier-rsmc")
		seed      = fs.Int64("seed", 1, "simulation seed")
		duration  = fs.Duration("duration", time.Minute, "virtual duration")
		mns       = fs.Int("mns", 8, "mobile node population")
		speed     = fs.Float64("speed", 10, "node speed in m/s")
		mob       = fs.String("mobility", string(core.MobilityShuttle), "waypoint | shuttle | shuttle-domains | manhattan | static")
		voice     = fs.Bool("voice", true, "downlink voice flow per MN")
		video     = fs.Bool("video", false, "downlink video flow per MN")
		dataIvl   = fs.Duration("data-interval", 0, "poisson data mean gap (0 = off)")
		roots     = fs.Int("roots", 1, "upper-layer base stations")
		noSwitch  = fs.Bool("no-resource-switching", false, "disable RSMC packet buffering")
		authOn    = fs.Bool("auth", false, "enable RSMC authentication")
		shadowing = fs.Bool("shadowing", false, "log-normal shadowing on measurements")
		full      = fs.Bool("metrics", false, "print the full metric registry")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	topCfg := topology.DefaultConfig()
	topCfg.Roots = *roots
	cfg := core.Config{
		Seed:              *seed,
		Duration:          *duration,
		Scheme:            core.Scheme(*scheme),
		Topology:          topCfg,
		NumMNs:            *mns,
		Mobility:          core.MobilityKind(*mob),
		SpeedMPS:          *speed,
		Traffic:           core.TrafficConfig{Voice: *voice, Video: *video, DataMeanInterval: *dataIvl},
		MeasureInterval:   100 * time.Millisecond,
		ResourceSwitching: !*noSwitch,
		GuardChannels:     -1,
		AuthEnabled:       *authOn,
		Shadowing:         *shadowing,
	}
	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("scheme=%s mns=%d speed=%.1fm/s duration=%v seed=%d\n",
		cfg.Scheme, cfg.NumMNs, cfg.SpeedMPS, cfg.Duration, cfg.Seed)
	fmt.Println(res.Summary)
	if *full {
		fmt.Println()
		fmt.Print(res.Registry.Render())
	}
	return nil
}
