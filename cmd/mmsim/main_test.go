package main

import "testing"

func TestRunDefaultFlags(t *testing.T) {
	if err := run([]string{"-duration", "3s", "-mns", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEveryScheme(t *testing.T) {
	for _, scheme := range []string{"mobile-ip", "cellular-ip-hard", "cellular-ip-semisoft", "multitier-rsmc"} {
		if err := run([]string{"-scheme", scheme, "-duration", "3s", "-mns", "2", "-metrics"}); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

func TestRunRejectsBadScheme(t *testing.T) {
	if err := run([]string{"-scheme", "bogus", "-duration", "3s"}); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunReplicated(t *testing.T) {
	if err := run([]string{"-duration", "3s", "-mns", "2", "-reps", "3", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadReps(t *testing.T) {
	if err := run([]string{"-duration", "3s", "-reps", "0"}); err == nil {
		t.Fatal("zero reps accepted")
	}
	if err := run([]string{"-duration", "3s", "-parallel", "0"}); err == nil {
		t.Fatal("zero parallel accepted")
	}
	if err := run([]string{"-duration", "3s", "-parallel", "-1"}); err == nil {
		t.Fatal("negative parallel accepted")
	}
}

func TestRunKnobs(t *testing.T) {
	if err := run([]string{
		"-duration", "3s", "-mns", "2", "-video", "-data-interval", "500ms",
		"-no-resource-switching", "-auth", "-shadowing", "-roots", "2",
		"-mobility", "waypoint", "-speed", "25",
	}); err != nil {
		t.Fatal(err)
	}
}
