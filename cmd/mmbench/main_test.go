package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-scale", "0.02", "-only", "E1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
