package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-scale", "0.02", "-only", "E1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunReplicatedParallel(t *testing.T) {
	if err := run([]string{"-scale", "0.02", "-only", "E1", "-reps", "2", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsDegenerateOptions(t *testing.T) {
	if err := run([]string{"-scale", "0"}); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := run([]string{"-scale", "-1"}); err == nil {
		t.Fatal("negative scale accepted")
	}
	if err := run([]string{"-reps", "0"}); err == nil {
		t.Fatal("zero reps accepted")
	}
	if err := run([]string{"-parallel", "0"}); err == nil {
		t.Fatal("zero parallel accepted")
	}
}

func TestRunJSONSummaryRecordsWorkerCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := run([]string{"-only", "E1", "-scale", "0.05",
		"-measureworkers", "3", "-parallel", "2", "-json", path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got runSummary
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("summary is not JSON: %v\n%s", err, raw)
	}
	if got.MeasureWorkers != 3 || got.Parallel != 2 || got.Experiments != 1 {
		t.Fatalf("summary fields wrong: %+v", got)
	}
}
