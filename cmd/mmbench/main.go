// Command mmbench regenerates every experiment table E1–E10 (DESIGN.md
// §3 maps E1–E8 to a figure or claim of the paper; E9 is the fleet scale
// sweep and E10 the capacity×population matrix, both run here at their
// reduced suite shapes — cmd/mmscale drives the full 500→10k axes). Use
// -scale to shrink run lengths during development, -parallel to spread
// each experiment's scenarios across workers, and -reps to replicate
// every scenario and report mean±std cells.
//
// Example:
//
//	mmbench                   # full-length suite, GOMAXPROCS workers
//	mmbench -scale 0.1        # 10x shorter scenarios
//	mmbench -only E6          # a single experiment
//	mmbench -reps 5 -seed 42  # 5 replications per cell
//	mmbench -parallel 1       # sequential (same tables as parallel)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mmbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mmbench", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "base seed")
		scale      = fs.Float64("scale", 1.0, "duration multiplier (e.g. 0.1 for quick runs)")
		only       = fs.String("only", "", "run a single experiment (E1..E10)")
		reps       = fs.Int("reps", 1, "replications per scenario (cells become mean±std)")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "scenario workers per experiment")
		measurew   = fs.Int("measureworkers", 1, "per-scenario measurement workers (0 = GOMAXPROCS); results are byte-identical for any count")
		jsonOut    = fs.String("json", "", "write a machine-readable run summary (experiments, reps, worker counts, elapsed) to this file ('-' = stderr)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mw := *measurew
	if mw == 0 {
		mw = runtime.GOMAXPROCS(0)
	}
	opt := experiments.Options{Seed: *seed, TimeScale: *scale, Reps: *reps, Parallel: *parallel,
		MeasureWorkers: mw}
	if err := opt.Validate(); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			// Allocation profile at exit: runtime.GC first so the profile
			// reflects live + cumulative allocation sites accurately.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "mmbench: memprofile:", err)
			}
			f.Close()
		}()
	}

	type exp struct {
		id  string
		run func(experiments.Options) (*experiments.Table, error)
	}
	all := []exp{
		{"E1", experiments.E1MobileIPProcedures},
		{"E2", experiments.E2CellularIPHandoff},
		{"E3", experiments.E3LocationManagement},
		{"E4", experiments.E4InterDomain},
		{"E5", experiments.E5IntraDomain},
		{"E6", experiments.E6SchemeComparison},
		{"E7", experiments.E7ResourceSwitching},
		{"E8", experiments.E8PagingAndRSMCLoad},
		{"E9", func(o experiments.Options) (*experiments.Table, error) {
			return experiments.E9ScaleSweep(o, experiments.SuiteScaleSweep())
		}},
		{"E10", func(o experiments.Options) (*experiments.Table, error) {
			return experiments.E10CapacityMatrix(o, experiments.SuiteCapacityMatrix())
		}},
	}
	ran := 0
	start := time.Now()
	for _, e := range all {
		if *only != "" && e.id != *only {
			continue
		}
		tbl, err := e.run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Println(tbl)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "mmbench: %d experiment(s), %d rep(s), %d worker(s), %d measure worker(s) in %v\n",
		ran, *reps, *parallel, mw, elapsed.Round(time.Millisecond))
	if *jsonOut != "" {
		summary := runSummary{
			Experiments:    ran,
			Reps:           *reps,
			Parallel:       *parallel,
			MeasureWorkers: mw,
			TimeScale:      *scale,
			Seed:           *seed,
			ElapsedMS:      elapsed.Milliseconds(),
		}
		if err := writeSummary(*jsonOut, summary); err != nil {
			return fmt.Errorf("-json: %w", err)
		}
	}
	return nil
}

// runSummary is the -json document: enough metadata to attribute a
// regenerated table set to its execution shape — in particular the
// scenario and measurement worker counts, which change throughput but
// never bytes.
type runSummary struct {
	Experiments    int     `json:"experiments"`
	Reps           int     `json:"reps"`
	Parallel       int     `json:"parallel"`
	MeasureWorkers int     `json:"measure_workers"`
	TimeScale      float64 `json:"time_scale"`
	Seed           int64   `json:"seed"`
	ElapsedMS      int64   `json:"elapsed_ms"`
}

// writeSummary emits the summary to a file, or to stderr for "-" so the
// table stream on stdout stays clean.
func writeSummary(path string, s runSummary) error {
	out := os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
