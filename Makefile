# Tier-1 verify plus the guards that keep the build honest. `make check`
# is what CI should run: vet catches the missing-go.mod class of rot at
# the first command, -race exercises the parallel scenario runner, and
# the bench smoke proves the benchmark harness still compiles and runs.

GO ?= go

# bench-save output file and bench-compare inputs.
OUT ?= bench.txt
OLD ?= old.txt
NEW ?= new.txt
# BENCH_JSON is the perf-trajectory snapshot bench-json writes.
BENCH_JSON ?= BENCH_4.json

.PHONY: verify build test check vet race bench bench-smoke bench-save bench-json bench-compare

verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race bench-smoke

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke: every benchmark once, allocation counters on — fast enough
# for CI, enough to catch a broken bench or a gross alloc regression.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' .

# bench-save: a comparable snapshot (fixed iteration count so runs pair up
# under benchstat).
bench-save:
	$(GO) test -bench . -benchtime 3x -benchmem -run '^$$' . > $(OUT)

# bench-json: machine-readable ns/op + allocs/op per experiment, written
# to $(BENCH_JSON) so the perf trajectory is tracked in-repo PR over PR.
# The bench output lands in an intermediate file first so a failing bench
# run aborts the recipe instead of silently truncating the snapshot.
bench-json:
	$(GO) test -bench . -benchtime 3x -benchmem -run '^$$' . > $(BENCH_JSON).tmp
	$(GO) run ./tools/benchjson < $(BENCH_JSON).tmp > $(BENCH_JSON)
	rm -f $(BENCH_JSON).tmp

bench-compare:
	sh tools/bench-compare.sh $(OLD) $(NEW)
