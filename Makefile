# Tier-1 verify plus the guards that keep the build honest. `make check`
# is what CI should run: vet catches the missing-go.mod class of rot at
# the first command, and -race exercises the parallel scenario runner.

GO ?= go

.PHONY: verify build test check vet race bench

verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
