# Tier-1 verify plus the guards that keep the build honest. `make check`
# is what CI should run: vet catches the missing-go.mod class of rot at
# the first command, -race exercises the parallel scenario runner, and
# the bench smoke proves the benchmark harness still compiles and runs.

GO ?= go

# bench-save output file and bench-compare inputs.
OUT ?= bench.txt
OLD ?= old.txt
NEW ?= new.txt
# BENCH_JSON is the perf-trajectory snapshot bench-json writes and the
# baseline bench-gate compares against.
BENCH_JSON ?= BENCH_10.json
# bench-gate tuning: GATE_ONLY is the single source of truth for what
# the gate covers — comma-separated benchmark name prefixes, passed to
# benchjson -only and converted into the -bench run regex below, so the
# set of benchmarks that run and the set that are gated cannot desync.
# GATE_LIMIT is the tolerated fractional ns/op (or allocs/op) regression
# versus the committed baseline.
GATE_ONLY ?= BenchmarkE6,BenchmarkE9,BenchmarkE10,BenchmarkE11,BenchmarkE13,BenchmarkE14
GATE_BENCH = $(shell echo '$(GATE_ONLY)' | sed 's/Benchmark//g; s/,/|/g')
GATE_LIMIT ?= 0.15

.PHONY: verify build test check vet lint race race-goldens bench bench-smoke bench-save bench-json bench-compare bench-gate

verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint: the domain linter (tools/mmlint) over the whole module — packet
# ownership, determinism discipline, noalloc annotations, simtime
# fencing. The binary is cached under bin/ and rebuilt only when the
# linter's sources change; findings exit non-zero. It also runs as a
# vettool: go vet -vettool=$(PWD)/bin/mmlint ./...
MMLINT_SRCS := $(shell find tools/mmlint -name '*.go' -not -path '*/testdata/*')

bin/mmlint: $(MMLINT_SRCS)
	@mkdir -p bin
	$(GO) build -o $@ ./tools/mmlint

lint: bin/mmlint
	./bin/mmlint ./...

race:
	$(GO) test -race ./...

# race-goldens: the E9–E11/E13/E14 golden suites with the parallel measurement
# phase (MeasureWorkers=4 pinned in the tests) under the race detector —
# byte-identity and data-race freedom of the fan-out in one run.
race-goldens:
	$(GO) test -race ./internal/experiments -run 'ParallelMeasurement' -count=1

check: vet lint race bench-smoke bench-gate

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke: every benchmark once, allocation counters on — fast enough
# for CI, enough to catch a broken bench or a gross alloc regression.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' .

# bench-save: a comparable snapshot (fixed iteration count so runs pair up
# under benchstat).
bench-save:
	$(GO) test -bench . -benchtime 3x -benchmem -run '^$$' . > $(OUT)

# bench-json: machine-readable ns/op + allocs/op per experiment, written
# to $(BENCH_JSON) so the perf trajectory is tracked in-repo PR over PR.
# The bench output lands in an intermediate file first so a failing bench
# run aborts the recipe instead of silently truncating the snapshot.
bench-json:
	$(GO) test -bench . -benchtime 3x -benchmem -run '^$$' . > $(BENCH_JSON).tmp
	$(GO) run ./tools/benchjson < $(BENCH_JSON).tmp > $(BENCH_JSON)
	rm -f $(BENCH_JSON).tmp

bench-compare:
	sh tools/bench-compare.sh $(OLD) $(NEW)

# bench-gate: the benchmark-regression gate CI runs — re-measure the
# gated experiment benchmarks (E6, E9 incl. the 10k-MN column, E10, E11,
# E13 closed-loop) and
# fail if ns/op (or allocs/op) regressed beyond GATE_LIMIT versus the
# committed $(BENCH_JSON) baseline. -count 3 repetitions are min-merged
# by the compare tool so a noisy machine doesn't flag phantom
# regressions. The intermediate file keeps a failing bench run from
# silently passing an empty report through the gate.
bench-gate:
	$(GO) test -bench '$(GATE_BENCH)' -benchtime 3x -count 3 -benchmem -run '^$$' . > bench-gate.tmp
	$(GO) run ./tools/benchjson -compare $(BENCH_JSON) -limit $(GATE_LIMIT) -only '$(GATE_ONLY)' < bench-gate.tmp
	rm -f bench-gate.tmp
