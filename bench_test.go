// Package repro's benchmark harness: one Benchmark per experiment
// E1–E10 (DESIGN.md §3 maps E1–E8 to a paper figure/claim; E9 is the
// fleet scale sweep and E10 the capacity×population matrix, both at
// reduced populations) plus micro-benchmarks of the
// simulator hot paths. Experiment benches run time-scaled
// scenarios; their per-op cost is "wall time to regenerate the
// experiment", which tracks simulation throughput.
package repro

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/multitier"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/runner"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// benchOpt pins Parallel to 1 so the per-experiment benches keep
// measuring raw single-worker simulation throughput; the suite-level
// benches below compare sequential vs worker-pool execution.
var benchOpt = experiments.Options{Seed: 11, TimeScale: 0.05, Parallel: 1}

func benchExperiment(b *testing.B, run func(experiments.Options) (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1MobileIPRegistration(b *testing.B) {
	benchExperiment(b, experiments.E1MobileIPProcedures)
}

func BenchmarkE2CellularIPHandoff(b *testing.B) {
	benchExperiment(b, experiments.E2CellularIPHandoff)
}

func BenchmarkE3LocationManagement(b *testing.B) {
	benchExperiment(b, experiments.E3LocationManagement)
}

func BenchmarkE4InterDomainHandoff(b *testing.B) {
	benchExperiment(b, experiments.E4InterDomain)
}

func BenchmarkE5IntraDomainHandoff(b *testing.B) {
	benchExperiment(b, experiments.E5IntraDomain)
}

func BenchmarkE6SchemeComparison(b *testing.B) {
	benchExperiment(b, experiments.E6SchemeComparison)
}

func BenchmarkE7ResourceSwitching(b *testing.B) {
	benchExperiment(b, experiments.E7ResourceSwitching)
}

func BenchmarkE8PagingAndRSMCLoad(b *testing.B) {
	benchExperiment(b, experiments.E8PagingAndRSMCLoad)
}

// BenchmarkE9ScaleSweep tracks fleet-workload throughput at a reduced
// population (the full 500→10k axis is cmd/mmscale's job): two
// populations of the default mixed-profile fleet under the multi-tier
// scheme, with the per-scenario packet arena on.
func BenchmarkE9ScaleSweep(b *testing.B) {
	sw := experiments.ScaleSweep{
		Populations: []int{100, 200},
		Schemes:     []core.Scheme{core.SchemeMultiTier},
		Duration:    10 * time.Second,
		Spec:        fleet.DefaultSpec(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9ScaleSweep(benchOpt, sw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Scale10k is the scale-sweep headline column: the full
// 10k-MN mixed-profile fleet under the multi-tier scheme, one cell of
// the E9 axis (cmd/mmscale sweeps the rest). Tick groups keep the event
// heap O(distinct intervals) and the bucket candidate cache keeps each
// measurement tick O(nearby), so this tracks raw large-population
// simulation throughput.
func BenchmarkE9Scale10k(b *testing.B) {
	sw := experiments.ScaleSweep{
		Populations: []int{10000},
		Schemes:     []core.Scheme{core.SchemeMultiTier},
		Duration:    10 * time.Second,
		Spec:        fleet.DefaultSpec(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9ScaleSweep(benchOpt, sw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Scale10kParallelMeasure is the same column with the
// measurement phase sharded across GOMAXPROCS workers — byte-identical
// output, wall time bounded by the sequential decision phase. On a
// single-core host it degenerates to the sequential cost.
func BenchmarkE9Scale10kParallelMeasure(b *testing.B) {
	sw := experiments.ScaleSweep{
		Populations: []int{10000},
		Schemes:     []core.Scheme{core.SchemeMultiTier},
		Duration:    10 * time.Second,
		Spec:        fleet.DefaultSpec(),
	}
	opt := benchOpt
	opt.MeasureWorkers = runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9ScaleSweep(opt, sw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10CapacityMatrix tracks dimensioned-arena throughput at a
// reduced population (the full 500→10k matrix is cmd/mmscale
// -dimension's job): two populations, fixed and dimensioned columns,
// multi-tier only — the planner, root-grid build and budget-override
// paths all on the clock.
func BenchmarkE10CapacityMatrix(b *testing.B) {
	m := experiments.CapacityMatrix{
		Populations: []int{100, 200},
		Schemes:     []core.Scheme{core.SchemeMultiTier},
		Duration:    10 * time.Second,
		Spec:        fleet.DefaultSpec(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E10CapacityMatrix(benchOpt, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Resilience tracks fault-injection throughput: the reduced
// resilience matrix (root-outage profile, every scheme, one population)
// keeps the fault scheduler, forced-deregistration flush, retransmission
// backoff and recovery-tracking machinery on the clock.
func BenchmarkE11Resilience(b *testing.B) {
	m := experiments.SuiteResilienceMatrix()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E11Resilience(benchOpt, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13ClosedLoop regenerates the closed-loop suite cell (the
// hotspot crowd under a root blackout, open and closed): its per-op
// cost prices the whole feedback loop — sampling, windowed monitor
// evaluation, alert-driven budget shifts and pre-paging — on top of a
// faulted multi-tier run.
func BenchmarkE13ClosedLoop(b *testing.B) {
	m := experiments.SuiteClosedLoopMatrix()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E13ClosedLoop(benchOpt, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14Degradation regenerates the degradation suite cell (the
// three-class crowd under the registration storm, cliff and graceful):
// its per-op cost prices the whole graceful-degradation path — the
// ladder's occupancy evaluation, per-class defer/preempt decisions,
// video rung switching, and GCRA-paced anchor registrations — on top
// of a faulted multi-tier run.
func BenchmarkE14Degradation(b *testing.B) {
	m := experiments.SuiteDegradationMatrix()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E14Degradation(benchOpt, m); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAll runs the full E1–E8 suite with the given worker count; the
// sequential/parallel pair quantifies the worker-pool speedup on the
// whole regeneration.
func benchAll(b *testing.B, parallel int) {
	b.Helper()
	b.ReportAllocs()
	opt := experiments.Options{Seed: 11, TimeScale: 0.02, Parallel: parallel}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.All(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllSequential(b *testing.B) { benchAll(b, 1) }

func BenchmarkAllParallel(b *testing.B) { benchAll(b, runtime.GOMAXPROCS(0)) }

// BenchmarkRunnerReplicated measures the worker pool itself: one config
// replicated across every core.
func BenchmarkRunnerReplicated(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Duration = 5 * time.Second
	cfg.NumMNs = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := runner.Run([]runner.Job{{Config: cfg}},
			runner.Options{BaseSeed: int64(i + 1), Reps: runtime.GOMAXPROCS(0)})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioPerScheme measures raw simulation throughput of one
// 30-virtual-second scenario per scheme.
func BenchmarkScenarioPerScheme(b *testing.B) {
	for _, scheme := range core.Schemes() {
		scheme := scheme
		b.Run(string(scheme), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Scheme = scheme
			cfg.Duration = 30 * time.Second
			cfg.NumMNs = 4
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				if _, err := core.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- simulator hot paths -------------------------------------------------

func BenchmarkSchedulerEventChurn(b *testing.B) {
	s := simtime.NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%64 == 0 {
			for s.Step() {
			}
		}
	}
	for s.Step() {
	}
}

func BenchmarkPacketMarshalUnmarshal(b *testing.B) {
	p := packet.New(addr.MustParse("10.0.0.1"), addr.MustParse("10.1.0.1"),
		packet.ClassStreaming, 7, 1, make([]byte, 512))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := p.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := packet.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncapsulateDecapsulate(b *testing.B) {
	inner := packet.New(addr.MustParse("10.0.0.1"), addr.MustParse("10.1.0.1"),
		packet.ClassConversational, 1, 1, make([]byte, 160))
	src, dst := addr.MustParse("172.16.0.1"), addr.MustParse("10.4.0.2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tun, err := packet.Encapsulate(src, dst, inner)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tun.Decapsulate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocationTableUpdateLookup(b *testing.B) {
	sched := simtime.NewScheduler()
	tab := multitier.NewTable(3*time.Second, sched)
	mns := make([]addr.IP, 256)
	for i := range mns {
		mns[i] = addr.V4(172, 16, 1, byte(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mn := mns[i%len(mns)]
		tab.Update(mn, topology.CellID(i%16), uint32(i))
		tab.Lookup(mn)
	}
}

func BenchmarkHistogramObserveQuantile(b *testing.B) {
	var h metrics.Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%100_000) * time.Microsecond)
		if i%1024 == 0 {
			h.Quantile(0.95)
		}
	}
}

func BenchmarkTopologySignals(b *testing.B) {
	top, err := topology.Build(topology.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pos := top.Cells[2].Pos
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		top.Signals(pos, nil)
	}
}

// BenchmarkTopologyMeasureInto is the actual per-tick measurement path:
// grid-restricted, into a reused scratch buffer — 0 allocs/op.
func BenchmarkTopologyMeasureInto(b *testing.B) {
	top, err := topology.Build(topology.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pos := top.Cells[2].Pos
	var scratch []radio.Signal
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scratch = top.MeasureInto(scratch, pos, nil)
	}
}

// BenchmarkPacketPoolCycle measures the free-list New/Release round trip
// that replaces a heap allocation per packet — 0 allocs/op.
func BenchmarkPacketPoolCycle(b *testing.B) {
	src, dst := addr.MustParse("10.0.0.1"), addr.MustParse("10.1.0.1")
	payload := packet.ZeroPayload(160)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := packet.New(src, dst, packet.ClassConversational, 1, uint32(i), payload)
		packet.Release(p)
	}
}
