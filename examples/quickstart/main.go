// Quickstart: run the paper's multi-tier scheme on the default topology
// for one simulated minute and print the headline numbers. This is the
// smallest end-to-end use of the public scenario API.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Duration = time.Minute
	cfg.NumMNs = 4
	cfg.SpeedMPS = 12

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("multi-tier mobility management, 4 MNs shuttling at 12 m/s for 1 virtual minute")
	fmt.Println(res.Summary)
	fmt.Println()
	fmt.Println("full metrics:")
	fmt.Print(res.Registry.Render())
}
