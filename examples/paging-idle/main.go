// Paging and idle mode: a mostly-idle population versus an active one —
// the Cellular IP paging trade-off (§2.2.2) consolidated at the RSMC
// (§4: "the load of RSMC is very low"). Idle nodes signal an order of
// magnitude less; the price is a paging flood when traffic arrives.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	topCfg := topology.DefaultConfig()
	topCfg.Roots = 1

	fmt.Println("16 static MNs for 2 virtual minutes: active (voice) vs idle (rare datagrams)")
	fmt.Printf("%-8s %16s %8s %18s %12s\n", "mode", "signal msgs/s", "pages", "page broadcasts", "RSMC ops/s")
	for _, active := range []bool{true, false} {
		cfg := core.Config{
			Seed:              3,
			Duration:          2 * time.Minute,
			Scheme:            core.SchemeMultiTier,
			Topology:          topCfg,
			NumMNs:            16,
			Mobility:          core.MobilityStatic,
			MeasureInterval:   100 * time.Millisecond,
			ResourceSwitching: true,
			GuardChannels:     -1,
		}
		if active {
			cfg.Traffic = core.TrafficConfig{Voice: true}
		} else {
			cfg.Traffic = core.TrafficConfig{DataMeanInterval: 20 * time.Second}
		}
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		reg := res.Registry
		secs := cfg.Duration.Seconds()
		var ops uint64
		for d := 0; d < 8; d++ {
			ops += reg.Counter(fmt.Sprintf("rsmc.%d.operations", d)).Value()
		}
		mode := "active"
		if !active {
			mode = "idle"
		}
		fmt.Printf("%-8s %16.2f %8d %18d %12.2f\n", mode,
			float64(res.Summary.SignalingMsgs)/secs,
			reg.Counter("tier.pages").Value(),
			reg.Counter("tier.page_broadcasts").Value(),
			float64(ops)/secs)
	}
}
