// Handoff comparison: the same macro-crossing workload under all four
// schemes — plain Mobile IP, Cellular IP hard and semisoft, and the
// paper's multi-tier RSMC architecture — printed as one table. This is
// the motivating comparison of the paper's §1 in runnable form.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	topCfg := topology.DefaultConfig()
	topCfg.Roots = 1

	fmt.Println("4 MNs shuttling between two macro cells at 20 m/s, voice downlink, 10 virtual minutes")
	fmt.Printf("%-22s %10s %12s %12s %9s %12s\n", "scheme", "loss", "mean delay", "p95 delay", "handoffs", "signal msgs")
	for _, scheme := range core.Schemes() {
		cfg := core.Config{
			Seed:              42,
			Duration:          10 * time.Minute,
			Scheme:            scheme,
			Topology:          topCfg,
			NumMNs:            4,
			Mobility:          core.MobilityShuttleDomains,
			SpeedMPS:          20,
			Traffic:           core.TrafficConfig{Voice: true},
			MeasureInterval:   100 * time.Millisecond,
			ResourceSwitching: true,
			GuardChannels:     -1,
		}
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-22s %9.3f%% %12v %12v %9d %12d\n",
			scheme, 100*s.LossRate,
			s.MeanLatency.Round(time.Microsecond),
			s.P95Latency.Round(time.Microsecond),
			s.Handoffs, s.SignalingMsgs)
	}
	fmt.Println("\nexpected shape: multitier-rsmc <= cellular-ip-semisoft < cellular-ip-hard < mobile-ip on loss")
}
