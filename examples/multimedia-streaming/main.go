// Multimedia streaming: voice + video to mobile nodes handing off
// repeatedly, with and without the RSMC's resource switching — the
// paper's §4 claim ("resource switching management to reduce data packet
// loss") as a before/after run.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	topCfg := topology.DefaultConfig()
	topCfg.Roots = 1

	fmt.Println("8 MNs, voice+video downlink, micro-cell shuttling at 15 m/s, 3 virtual minutes")
	for _, rs := range []bool{true, false} {
		cfg := core.Config{
			Seed:              7,
			Duration:          3 * time.Minute,
			Scheme:            core.SchemeMultiTier,
			Topology:          topCfg,
			NumMNs:            8,
			Mobility:          core.MobilityShuttle,
			SpeedMPS:          15,
			Traffic:           core.TrafficConfig{Voice: true, Video: true},
			MeasureInterval:   100 * time.Millisecond,
			ResourceSwitching: rs,
			GuardChannels:     -1,
		}
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		reg := res.Registry
		fmt.Printf("\nresource switching: %v\n", rs)
		fmt.Printf("  %s\n", res.Summary)
		fmt.Printf("  buffered=%d drained=%d stale-drops=%d\n",
			reg.Counter("tier.rs.buffered").Value(),
			reg.Counter("tier.rs.drained").Value(),
			reg.Counter("tier.stale_air_drops").Value())
		fmt.Printf("  voice:  %s\n", reg.Histogram("e2e.latency.conversational"))
		fmt.Printf("  video:  %s\n", reg.Histogram("e2e.latency.streaming"))
	}
}
